#include "glove/serve/publish.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/temp_dir.hpp"
#include "glove/api/engine.hpp"
#include "glove/api/source.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"

namespace glove::serve {
namespace {

cdr::CdrEvent event(cdr::UserId user, double time_min, double lat_offset) {
  return cdr::CdrEvent{user, time_min,
                       geo::LatLon{6.82 + lat_offset, -5.28}};
}

ClosedWindow window_of(double begin_min, double end_min,
                       std::vector<cdr::CdrEvent> events) {
  return ClosedWindow{WindowBounds{begin_min, end_min}, std::move(events)};
}

/// Serve config publishing CSV snapshots with k=2 into a fresh temp dir.
ServeConfig test_config(const test::TempDir& dir) {
  ServeConfig config;
  config.out_dir = dir.file("out");
  // std::string{} sidesteps a GCC 12 -Wrestrict false positive on short
  // const char* assignment (GCC PR105329).
  config.dataset_name = std::string{"t"};
  config.run.k = 2;
  config.builder.projection_origin = geo::LatLon{6.82, -5.28};
  std::filesystem::create_directories(config.out_dir);
  return config;
}

/// Every group of `before` must survive as a subset of some group of
/// `after` — the cross-release linkage guarantee snapshots must keep.
void expect_groups_never_split(const cdr::FingerprintDataset& before,
                               const cdr::FingerprintDataset& after) {
  for (const cdr::Fingerprint& old_group : before.fingerprints()) {
    const std::set<cdr::UserId> old_members{old_group.members().begin(),
                                            old_group.members().end()};
    bool found = false;
    for (const cdr::Fingerprint& new_group : after.fingerprints()) {
      const std::set<cdr::UserId> members{new_group.members().begin(),
                                          new_group.members().end()};
      if (std::includes(members.begin(), members.end(), old_members.begin(),
                        old_members.end())) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "group lost members across epochs";
  }
}

TEST(SnapshotPublisher, RejectsUnknownSnapshotFormat) {
  const test::TempDir dir;
  const api::Engine engine;
  ServeConfig config = test_config(dir);
  config.snapshot_format = "parquet";
  EXPECT_THROW((SnapshotPublisher{config, engine}), std::invalid_argument);
}

TEST(SnapshotPublisher, RejectsPresetIncrementalBase) {
  const test::TempDir dir;
  const api::Engine engine;
  const cdr::FingerprintDataset stray;
  ServeConfig config = test_config(dir);
  config.run.incremental.published = &stray;
  EXPECT_THROW((SnapshotPublisher{config, engine}), std::invalid_argument);
}

TEST(SnapshotPublisher, EmptyWindowPublishesNothing) {
  const test::TempDir dir;
  const api::Engine engine;
  const ServeConfig config = test_config(dir);
  SnapshotPublisher publisher{config, engine};
  const EpochResult result = publisher.publish_window(window_of(0, 100, {}));
  EXPECT_FALSE(result.published);
  EXPECT_EQ(publisher.epochs_published(), 0u);
}

TEST(SnapshotPublisher, DefersFirstEpochUntilKUsersPending) {
  const test::TempDir dir;
  const api::Engine engine;
  const ServeConfig config = test_config(dir);
  SnapshotPublisher publisher{config, engine};

  // One user < k=2: no k-anonymous release is possible yet.
  const EpochResult first =
      publisher.publish_window(window_of(0, 100, {event(1, 10, 0.0)}));
  EXPECT_FALSE(first.published);
  EXPECT_EQ(publisher.pending_events(), 1u);

  // The deferred user publishes together with the next window's newcomer.
  const EpochResult second =
      publisher.publish_window(window_of(100, 200, {event(2, 110, 0.0)}));
  ASSERT_TRUE(second.published);
  EXPECT_EQ(second.epoch, 1u);
  EXPECT_EQ(second.newcomers, 2u);
  EXPECT_EQ(second.total_users, 2u);
  EXPECT_EQ(publisher.pending_events(), 0u);
}

TEST(SnapshotPublisher, SnapshotsAreKAnonymousAndAtomicallyNamed) {
  const test::TempDir dir;
  const api::Engine engine;
  const ServeConfig config = test_config(dir);
  SnapshotPublisher publisher{config, engine};

  std::vector<cdr::CdrEvent> events;
  for (cdr::UserId user = 0; user < 4; ++user) {
    events.push_back(event(user, 10.0 + static_cast<double>(user),
                           0.001 * static_cast<double>(user / 2)));
  }
  const EpochResult result =
      publisher.publish_window(window_of(0, 100, std::move(events)));
  ASSERT_TRUE(result.published);
  EXPECT_EQ(result.snapshot_path, config.out_dir + "/snapshot-000001.csv");
  EXPECT_EQ(result.report_path, config.out_dir + "/report-000001.json");
  ASSERT_TRUE(std::filesystem::exists(result.snapshot_path));
  ASSERT_TRUE(std::filesystem::exists(result.report_path));
  // No .tmp residue: the publish either completed or never surfaced.
  for (const auto& entry :
       std::filesystem::directory_iterator(config.out_dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  const cdr::FingerprintDataset snapshot =
      cdr::read_dataset_file(result.snapshot_path);
  EXPECT_TRUE(core::is_k_anonymous(snapshot, config.run.k));
  EXPECT_EQ(snapshot.total_users(), 4u);
}

TEST(SnapshotPublisher, LaterEpochsOnlyWidenPublishedGroups) {
  const test::TempDir dir;
  const api::Engine engine;
  const ServeConfig config = test_config(dir);
  SnapshotPublisher publisher{config, engine};

  std::vector<cdr::CdrEvent> first;
  for (cdr::UserId user = 0; user < 4; ++user) {
    first.push_back(event(user, 10.0 + static_cast<double>(user),
                          0.001 * static_cast<double>(user / 2)));
  }
  ASSERT_TRUE(publisher.publish_window(window_of(0, 100, first)).published);
  const cdr::FingerprintDataset epoch1 = publisher.published();

  std::vector<cdr::CdrEvent> second;
  for (cdr::UserId user = 10; user < 13; ++user) {
    second.push_back(event(user, 110.0 + static_cast<double>(user),
                           0.001 * static_cast<double>(user)));
  }
  const EpochResult result =
      publisher.publish_window(window_of(100, 200, second));
  ASSERT_TRUE(result.published);
  EXPECT_EQ(result.epoch, 2u);
  EXPECT_EQ(result.newcomers, 3u);
  EXPECT_EQ(result.total_users, 7u);

  expect_groups_never_split(epoch1, publisher.published());
  EXPECT_TRUE(core::is_k_anonymous(publisher.published(), config.run.k));
}

TEST(SnapshotPublisher, DropsEventsOfPublishedUsers) {
  const test::TempDir dir;
  const api::Engine engine;
  const ServeConfig config = test_config(dir);
  SnapshotPublisher publisher{config, engine};

  ASSERT_TRUE(publisher
                  .publish_window(window_of(
                      0, 100, {event(1, 10, 0.0), event(2, 11, 0.0)}))
                  .published);

  // Fresh events from already-published users must not trigger an epoch:
  // their released fingerprints are immutable.
  const EpochResult result = publisher.publish_window(
      window_of(100, 200, {event(1, 150, 0.0), event(2, 151, 0.0)}));
  EXPECT_FALSE(result.published);
  EXPECT_EQ(publisher.pending_events(), 0u);
  EXPECT_EQ(publisher.epochs_published(), 1u);
}

TEST(SnapshotPublisher, GlovebinSnapshotsRoundTrip) {
  const test::TempDir dir;
  const api::Engine engine;
  ServeConfig config = test_config(dir);
  config.snapshot_format = "glovebin";
  SnapshotPublisher publisher{config, engine};

  const EpochResult result = publisher.publish_window(
      window_of(0, 100, {event(1, 10, 0.0), event(2, 11, 0.0)}));
  ASSERT_TRUE(result.published);
  EXPECT_EQ(result.snapshot_path,
            config.out_dir + "/snapshot-000001.glovebin");
  // open_dataset_source sniffs the glovebin magic (read_dataset_file is
  // the CSV-only path).
  const auto source = api::open_dataset_source(result.snapshot_path);
  cdr::Fingerprint fp;
  std::size_t users = 0;
  while (source->next(fp)) {
    EXPECT_GE(fp.group_size(), config.run.k);
    users += fp.group_size();
  }
  EXPECT_EQ(users, 2u);
}

}  // namespace
}  // namespace glove::serve
