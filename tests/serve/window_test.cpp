#include "glove/serve/window.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace glove::serve {
namespace {

cdr::CdrEvent event(cdr::UserId user, double time_min) {
  return cdr::CdrEvent{user, time_min, geo::LatLon{6.8, -5.3}};
}

TEST(WindowAccumulator, RejectsNonPositiveWindow) {
  EXPECT_THROW(WindowAccumulator{0.0}, std::invalid_argument);
  EXPECT_THROW(WindowAccumulator{-10.0}, std::invalid_argument);
}

TEST(WindowAccumulator, FirstEventAlignsWindowToMultiples) {
  // Event at t=1500 with 1440-minute windows lands in [1440, 2880): the
  // window grid is absolute, not anchored at the first event, so a
  // restarted daemon over the same stream closes identical windows.
  WindowAccumulator window{1440.0};
  window.add(event(1, 1500.0));
  EXPECT_TRUE(window.started());
  EXPECT_FALSE(window.window_ready());
  window.add(event(2, 2879.9));
  EXPECT_FALSE(window.window_ready());  // watermark still inside
  window.add(event(3, 2880.0));
  ASSERT_TRUE(window.window_ready());
  const ClosedWindow closed = window.close_window();
  EXPECT_DOUBLE_EQ(closed.bounds.begin_min, 1440.0);
  EXPECT_DOUBLE_EQ(closed.bounds.end_min, 2880.0);
  ASSERT_EQ(closed.events.size(), 2u);
  EXPECT_EQ(closed.events[0].user, 1u);
  EXPECT_EQ(closed.events[1].user, 2u);
  EXPECT_EQ(window.pending_events(), 1u);  // the t=2880 event
}

TEST(WindowAccumulator, SplitPreservesArrivalOrder) {
  WindowAccumulator window{100.0};
  window.add(event(5, 10.0));
  window.add(event(3, 150.0));  // next window
  window.add(event(7, 20.0));   // still this window, arrived later
  window.add(event(1, 99.0));
  ASSERT_TRUE(window.window_ready());
  const ClosedWindow closed = window.close_window();
  ASSERT_EQ(closed.events.size(), 3u);
  EXPECT_EQ(closed.events[0].user, 5u);
  EXPECT_EQ(closed.events[1].user, 7u);
  EXPECT_EQ(closed.events[2].user, 1u);
}

TEST(WindowAccumulator, EventTimeGapYieldsEmptyWindows) {
  // A silent day produces empty closed windows, not a stall: the
  // publisher skips them and the stream stays aligned to the grid.
  WindowAccumulator window{100.0};
  window.add(event(1, 50.0));
  window.add(event(2, 350.0));  // skips windows [100,200) and [200,300)
  ASSERT_TRUE(window.window_ready());
  EXPECT_EQ(window.close_window().events.size(), 1u);  // [0, 100)
  ASSERT_TRUE(window.window_ready());
  EXPECT_EQ(window.close_window().events.size(), 0u);  // [100, 200)
  ASSERT_TRUE(window.window_ready());
  EXPECT_EQ(window.close_window().events.size(), 0u);  // [200, 300)
  EXPECT_FALSE(window.window_ready());                 // [300, 400) open
  EXPECT_EQ(window.pending_events(), 1u);
}

TEST(WindowAccumulator, LateEventsFoldIntoNextClose) {
  WindowAccumulator window{100.0};
  window.add(event(1, 120.0));  // window [100, 200)
  window.add(event(2, 30.0));   // late: before the current window
  window.add(event(3, 200.0));
  ASSERT_TRUE(window.window_ready());
  const ClosedWindow closed = window.close_window();
  // The late event still publishes (time < end); arrival order kept.
  ASSERT_EQ(closed.events.size(), 2u);
  EXPECT_EQ(closed.events[0].user, 1u);
  EXPECT_EQ(closed.events[1].user, 2u);
}

TEST(WindowAccumulator, CloseFinalReturnsEverythingBuffered) {
  WindowAccumulator window{100.0};
  window.add(event(1, 10.0));
  window.add(event(2, 50.0));
  EXPECT_FALSE(window.window_ready());
  const ClosedWindow final_window = window.close_final();
  EXPECT_EQ(final_window.events.size(), 2u);
  EXPECT_EQ(window.pending_events(), 0u);
  // An un-started accumulator drains to an empty window.
  WindowAccumulator empty{100.0};
  EXPECT_TRUE(empty.close_final().events.empty());
}

}  // namespace
}  // namespace glove::serve
