// Metrics registry: exact cross-thread sums (this suite runs under the
// TSan CI job via the obs. test-name prefix), log2 histogram bucket
// edges, retired-thread folding, and the snapshot/delta contracts the
// run report's "obs" section depends on.

#include "glove/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace glove::obs {
namespace {

const HistogramSnapshot* find_histogram(const MetricsSnapshot& snapshot,
                                        std::string_view name) {
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(ObsRegistry, CounterSumsExactlyAcrossThreads) {
  const Counter c = counter("test.registry.thread_sum");
  const MetricsSnapshot before = snapshot_metrics();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add();
      c.add(5);  // non-unit deltas fold the same way
    });
  }
  for (std::thread& w : workers) w.join();
  const MetricsSnapshot after = snapshot_metrics();
  EXPECT_EQ(after.counter_value("test.registry.thread_sum") -
                before.counter_value("test.registry.thread_sum"),
            kThreads * (kAddsPerThread + 5));
}

TEST(ObsRegistry, RetiredThreadTotalsSurviveThreadExit) {
  const Counter c = counter("test.registry.retired");
  std::thread worker{[&] { c.add(123); }};
  worker.join();
  // The worker's shard is gone; its total must have been folded into the
  // registry's retired totals.
  EXPECT_GE(snapshot_metrics().counter_value("test.registry.retired"), 123u);
}

TEST(ObsRegistry, RenderMetricsTextIsSortedAndTyped) {
  const Counter c = counter("test.render.aa_count");
  const Gauge g = gauge("test.render.bb_gauge");
  const Histogram h = histogram("test.render.cc_hist");
  c.add(3);
  g.set(2.5);
  h.observe(4);
  h.observe(8);
  const std::string text = render_metrics_text(snapshot_metrics());
  // One "<type> <name> <value...>" line per metric, in the snapshot's
  // name-sorted order — the admin `metrics` wire format.
  const std::size_t c_pos = text.find("counter test.render.aa_count ");
  const std::size_t g_pos = text.find("gauge test.render.bb_gauge 2.5\n");
  const std::size_t h_pos =
      text.find("histogram test.render.cc_hist count=2 sum=12");
  ASSERT_NE(c_pos, std::string::npos) << text;
  ASSERT_NE(g_pos, std::string::npos) << text;
  ASSERT_NE(h_pos, std::string::npos) << text;
  EXPECT_LT(c_pos, g_pos);
  EXPECT_LT(g_pos, h_pos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  const Counter a = counter("test.registry.same_slot");
  const Counter b = counter("test.registry.same_slot");
  const MetricsSnapshot before = snapshot_metrics();
  a.add(2);
  b.add(3);
  const MetricsSnapshot after = snapshot_metrics();
  EXPECT_EQ(after.counter_value("test.registry.same_slot") -
                before.counter_value("test.registry.same_slot"),
            5u);
}

TEST(ObsRegistry, HistogramBucketEdgesFollowBitWidth) {
  const Histogram h = histogram("test.registry.hist_edges");
  // bucket 0 <- value 0; bucket i <- bit_width i = [2^(i-1), 2^i).
  h.observe(0);
  h.observe(1);            // bucket 1
  h.observe(2);            // bucket 2
  h.observe(3);            // bucket 2 (upper edge of [2, 4))
  h.observe(4);            // bucket 3
  h.observe(7);            // bucket 3
  h.observe(8);            // bucket 4
  h.observe(1ull << 20);   // bucket 21
  const MetricsSnapshot snapshot = snapshot_metrics();
  const HistogramSnapshot* edges =
      find_histogram(snapshot, "test.registry.hist_edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->count, 8u);
  EXPECT_EQ(edges->sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + (1ull << 20));
  ASSERT_EQ(edges->buckets.size(), 22u);  // trailing zeros trimmed
  EXPECT_EQ(edges->buckets[0], 1u);
  EXPECT_EQ(edges->buckets[1], 1u);
  EXPECT_EQ(edges->buckets[2], 2u);
  EXPECT_EQ(edges->buckets[3], 2u);
  EXPECT_EQ(edges->buckets[4], 1u);
  EXPECT_EQ(edges->buckets[21], 1u);
}

TEST(ObsRegistry, HistogramTopBucketAbsorbsHugeValues) {
  const Histogram h = histogram("test.registry.hist_top");
  h.observe(~0ull);  // bit_width 64 > last bucket index
  // The snapshot must outlive `top`, which points into it.
  const MetricsSnapshot snapshot = snapshot_metrics();
  const HistogramSnapshot* top =
      find_histogram(snapshot, "test.registry.hist_top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->buckets.size(), kHistogramBuckets);
  EXPECT_EQ(top->buckets.back(), 1u);
}

TEST(ObsRegistry, GaugeIsLastWriteWins) {
  const Gauge g = gauge("test.registry.gauge");
  g.set(4.0);
  g.set(2.5);
  const MetricsSnapshot snapshot = snapshot_metrics();
  const auto it = std::find_if(
      snapshot.gauges.begin(), snapshot.gauges.end(),
      [](const auto& entry) { return entry.first == "test.registry.gauge"; });
  ASSERT_NE(it, snapshot.gauges.end());
  EXPECT_DOUBLE_EQ(it->second, 2.5);
}

TEST(ObsRegistry, InvalidNamesThrow) {
  EXPECT_THROW((void)counter(""), std::invalid_argument);
  EXPECT_THROW((void)counter("Upper.case"), std::invalid_argument);
  EXPECT_THROW((void)gauge("has space"), std::invalid_argument);
  EXPECT_THROW((void)histogram("hy-phen"), std::invalid_argument);
  EXPECT_TRUE(valid_metric_name("stream.pass1.scan"));
  EXPECT_TRUE(valid_metric_name("a_b.c_0"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("A"));
}

TEST(ObsRegistry, SnapshotIsSortedByName) {
  (void)counter("test.registry.zz");
  (void)counter("test.registry.aa");
  const MetricsSnapshot snapshot = snapshot_metrics();
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(ObsRegistry, CounterDeltaIsolatesARunAndDropsZeros) {
  const Counter moved = counter("test.registry.delta_moved");
  const Counter idle = counter("test.registry.delta_idle");
  moved.add(10);  // pre-run noise, as from an earlier run in the process
  idle.add(1);
  const MetricsSnapshot before = snapshot_metrics();
  moved.add(7);
  const MetricsSnapshot after = snapshot_metrics();
  const auto delta = counter_delta(before, after);
  const auto find = [&](std::string_view name) {
    return std::find_if(delta.begin(), delta.end(), [&](const auto& entry) {
      return entry.first == name;
    });
  };
  const auto hit = find("test.registry.delta_moved");
  ASSERT_NE(hit, delta.end());
  EXPECT_EQ(hit->second, 7u);
  EXPECT_EQ(find("test.registry.delta_idle"), delta.end());
}

}  // namespace
}  // namespace glove::obs
