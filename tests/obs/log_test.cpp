// Structured stderr logger: off by default, `ts level phase key=value`
// line shape, and the per-second rate cap with suppressed-line
// accounting.  The limiter is process-global, so these tests tolerate
// budget already consumed earlier in the same second.

#include "glove/obs/log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <regex>
#include <string>
#include <thread>

namespace glove::obs {
namespace {

class ObsLogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_verbose(false); }

  static std::string captured_while(const std::function<void()>& body) {
    ::testing::internal::CaptureStderr();
    body();
    return ::testing::internal::GetCapturedStderr();
  }
};

TEST_F(ObsLogTest, SilentWhenVerboseIsOff) {
  set_log_verbose(false);
  EXPECT_FALSE(log_verbose());
  const std::string err = captured_while(
      [] { log_info("test.log.silent", "k=1"); });
  EXPECT_TRUE(err.empty()) << err;
}

TEST_F(ObsLogTest, EmitsStructuredLines) {
  // A fresh one-second window so this test's first line is admitted even
  // after earlier suites spent budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(1'100));
  set_log_verbose(true);
  EXPECT_TRUE(log_verbose());
  const std::string err = captured_while([] {
    log_info("test.log.shape", log_kv("users", 42) + ' ' + log_kv("shards", 3));
    log_warn("test.log.warned", "reason=capped");
  });
  // ts is seconds.millis since the first log line of the process.
  EXPECT_TRUE(std::regex_search(
      err, std::regex{R"(\d+\.\d{3} INFO test\.log\.shape users=42 shards=3)"}))
      << err;
  EXPECT_TRUE(std::regex_search(
      err, std::regex{R"(\d+\.\d{3} WARN test\.log\.warned reason=capped)"}))
      << err;
}

TEST_F(ObsLogTest, RateCapSuppressesAndReportsOnTheNextLine) {
  set_log_verbose(true);
  const std::string burst = captured_while([] {
    for (int i = 0; i < kMaxLogLinesPerSecond * 3; ++i) {
      log_info("test.log.burst", log_kv("i", static_cast<std::uint64_t>(i)));
    }
  });
  const auto lines =
      static_cast<int>(std::count(burst.begin(), burst.end(), '\n'));
  EXPECT_LE(lines, kMaxLogLinesPerSecond);
  EXPECT_GT(lines, 0);

  // After the window rolls over, the first admitted line carries the
  // suppressed-count so drops are visible in the log itself.
  std::this_thread::sleep_for(std::chrono::milliseconds(1'100));
  const std::string next = captured_while(
      [] { log_info("test.log.after_burst", "k=1"); });
  EXPECT_NE(next.find("suppressed="), std::string::npos) << next;
}

TEST_F(ObsLogTest, FlushEmitsFinalSuppressedMarker) {
  // A run that ends (or drains) inside a rate-capped second would lose
  // the suppressed count — the next admitted line never comes.  The
  // shutdown flush emits a final marker unconditionally.
  set_log_verbose(true);
  captured_while([] {
    // 3x the cap: even if the one-second window rolls over mid-burst (at
    // most once — the burst takes microseconds), at least a full cap's
    // worth of lines stays suppressed for the flush to report.
    for (int i = 0; i < kMaxLogLinesPerSecond * 3; ++i) {
      log_info("test.log.flush_burst",
               log_kv("i", static_cast<std::uint64_t>(i)));
    }
  });
  const std::string flushed = captured_while([] { flush_suppressed_log(); });
  EXPECT_NE(flushed.find("log.flush"), std::string::npos) << flushed;
  EXPECT_NE(flushed.find("suppressed="), std::string::npos) << flushed;

  // The flush resets the count: a second flush has nothing to say.
  const std::string again = captured_while([] { flush_suppressed_log(); });
  EXPECT_TRUE(again.empty()) << again;
}

TEST_F(ObsLogTest, FlushIsSilentWhenVerboseOff) {
  set_log_verbose(false);
  const std::string err = captured_while([] { flush_suppressed_log(); });
  EXPECT_TRUE(err.empty()) << err;
}

TEST_F(ObsLogTest, LogKvFormats) {
  EXPECT_EQ(log_kv("blocks", 17), "blocks=17");
  EXPECT_EQ(log_kv("zero", 0), "zero=0");
}

}  // namespace
}  // namespace glove::obs
