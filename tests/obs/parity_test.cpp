// Observability parity: running the engine with tracing and verbose
// logging enabled must leave the anonymized output byte-identical to an
// uninstrumented run — spans and log lines are side channels, never data.
// This is the in-process version of the CI gate that diffs a --trace-out
// streaming run against a plain one.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/api/cli.hpp"
#include "glove/api/engine.hpp"
#include "glove/obs/log.hpp"
#include "glove/obs/span.hpp"

namespace glove::api {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string streamed_run_output(const test::TempDir& dir,
                                const std::string& input, bool instrumented,
                                const std::string& tag) {
  const Engine engine;
  RunConfig config;
  config.strategy = kStrategySharded;
  config.sharded.max_shard_users = 16;
  if (instrumented) {
    obs::set_log_verbose(true);
    obs::start_tracing();
  }
  const std::string output = dir.file("anon_" + tag + ".csv");
  {
    const auto source = open_dataset_source(input);
    const auto sink = make_dataset_sink(output, "csv");
    const auto result = engine.run(*source, *sink, config);
    EXPECT_TRUE(result.ok())
        << (result.ok() ? "" : result.error().message);
  }
  if (instrumented) {
    obs::set_log_verbose(false);
    const std::string trace = obs::stop_tracing_and_render();
    EXPECT_NE(trace.find("engine.run"), std::string::npos)
        << "instrumented run produced no engine.run span";
  }
  return read_all(output);
}

TEST(ObsParity, TracingAndVerboseLeaveStreamedOutputByteIdentical) {
  const test::TempDir dir;
  const std::string input = dir.file("dataset.csv");
  {
    const cdr::FingerprintDataset data = test::small_synth_dataset(60);
    const auto sink = make_dataset_sink(input, "csv");
    sink->begin(data.name());
    for (const cdr::Fingerprint& fp : data.fingerprints()) sink->write(fp);
    sink->finish();
  }
  ::testing::internal::CaptureStderr();  // swallow the verbose log lines
  const std::string plain =
      streamed_run_output(dir, input, /*instrumented=*/false, "plain");
  const std::string traced =
      streamed_run_output(dir, input, /*instrumented=*/true, "traced");
  (void)::testing::internal::GetCapturedStderr();
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, traced);
}

TEST(ObsParity, InMemoryRunIsUnaffectedByTracing) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  const Engine engine;
  RunConfig config;
  config.k = 2;
  const auto plain = engine.run(data, config);
  ASSERT_TRUE(plain.ok());
  obs::start_tracing();
  const auto traced = engine.run(data, config);
  (void)obs::stop_tracing_and_render();
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(test::dataset_to_csv(plain.value().anonymized),
            test::dataset_to_csv(traced.value().anonymized));
}

}  // namespace
}  // namespace glove::api
