// Span tracing: nesting/balance of the exported begin/end stream, arg
// attachment, the off-by-default fast path, and a round-trip of the
// rendered document through tools/check_trace.py (the same validator CI
// runs on --trace-out files).

#include "glove/obs/span.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "common/temp_dir.hpp"

namespace glove::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsSpan, DisabledByDefaultAndRendersEmpty) {
  EXPECT_FALSE(tracing_enabled());
  { GLOVE_SPAN("test.span.untraced"); }
  start_tracing();
  const std::string doc = stop_tracing_and_render();
  EXPECT_EQ(doc.find("test.span.untraced"), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsSpan, RecordsBalancedNestedEventsPerThread) {
  start_tracing();
  {
    GLOVE_SPAN("test.span.outer");
    { GLOVE_SPAN("test.span.inner"); }
    std::thread worker{[] { GLOVE_SPAN("test.span.worker"); }};
    worker.join();
  }
  const std::string doc = stop_tracing_and_render();
  EXPECT_FALSE(tracing_enabled());
  for (const char* name :
       {"test.span.outer", "test.span.inner", "test.span.worker"}) {
    EXPECT_EQ(count_occurrences(doc, std::string{"\""} + name + "\""), 2u)
        << name << " must appear exactly as one B and one E event";
  }
  EXPECT_EQ(count_occurrences(doc, "\"ph\": \"B\""),
            count_occurrences(doc, "\"ph\": \"E\""));
  // The worker thread got its own tid lane.
  EXPECT_GE(count_occurrences(doc, "\"tid\": "), 6u);
}

TEST(ObsSpan, ArgsAttachToTheEndEvent) {
  start_tracing();
  {
    GLOVE_SPAN_NAMED(span, "test.span.args");
    span.arg("members", 42);
    span.arg("groups", 7);
  }
  const std::string doc = stop_tracing_and_render();
  EXPECT_NE(doc.find("\"members\": 42"), std::string::npos);
  EXPECT_NE(doc.find("\"groups\": 7"), std::string::npos);
}

TEST(ObsSpan, SpanLeftOpenAtStopIsDroppedCleanly) {
  start_tracing();
  auto* open = new Span{"test.span.leaked"};
  {
    GLOVE_SPAN("test.span.closed");  // nested inside the open span
  }
  const std::string doc = stop_tracing_and_render();
  delete open;  // end lands after the cut; must not corrupt anything
  EXPECT_EQ(doc.find("test.span.leaked"), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, "\"test.span.closed\""), 2u);
}

TEST(ObsSpan, RestartClearsThePreviousTrace) {
  start_tracing();
  { GLOVE_SPAN("test.span.first_run"); }
  (void)stop_tracing_and_render();
  start_tracing();
  { GLOVE_SPAN("test.span.second_run"); }
  const std::string doc = stop_tracing_and_render();
  EXPECT_EQ(doc.find("test.span.first_run"), std::string::npos);
  EXPECT_NE(doc.find("test.span.second_run"), std::string::npos);
}

TEST(ObsSpan, RenderedTracePassesCheckTracePy) {
  if (std::system("python3 -c 'pass' > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  start_tracing();
  {
    GLOVE_SPAN_NAMED(outer, "test.span.roundtrip");
    outer.arg("items", 3);
    for (int i = 0; i < 3; ++i) { GLOVE_SPAN("test.span.item"); }
    std::thread worker{[] { GLOVE_SPAN("test.span.roundtrip_worker"); }};
    worker.join();
  }
  const std::string doc = stop_tracing_and_render();
  const test::TempDir dir;
  const std::string path = dir.file("trace.json");
  {
    std::ofstream out{path};
    out << doc;
    ASSERT_TRUE(out.good());
  }
  const std::string command = std::string{"python3 "} + GLOVE_CHECK_TRACE +
                              " " + path +
                              " --require test.span.roundtrip"
                              " --require test.span.item"
                              " --require test.span.roundtrip_worker";
  EXPECT_EQ(std::system(command.c_str()), 0)
      << "check_trace.py rejected the rendered document:\n"
      << doc;
}

}  // namespace
}  // namespace glove::obs
