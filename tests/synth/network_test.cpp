#include "glove/synth/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "glove/util/rng.hpp"

namespace glove::synth {
namespace {

NetworkConfig small_config() {
  NetworkConfig config;
  config.antennas = 200;
  config.region_size_m = 100'000.0;
  config.cities = 4;
  config.urban_fraction = 0.7;
  config.seed = 3;
  return config;
}

TEST(AntennaNetwork, GeneratesRequestedAntennaCount) {
  const AntennaNetwork network{small_config()};
  EXPECT_EQ(network.size(), 200u);
  EXPECT_EQ(network.cities().size(), 4u);
}

TEST(AntennaNetwork, AntennasStayInRegion) {
  const NetworkConfig config = small_config();
  const AntennaNetwork network{config};
  for (const auto& a : network.antennas()) {
    EXPECT_GE(a.x_m, 0.0);
    EXPECT_LE(a.x_m, config.region_size_m);
    EXPECT_GE(a.y_m, 0.0);
    EXPECT_LE(a.y_m, config.region_size_m);
  }
}

TEST(AntennaNetwork, DeterministicForSeed) {
  const AntennaNetwork a{small_config()};
  const AntennaNetwork b{small_config()};
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.antenna(i).x_m, b.antenna(i).x_m);
    EXPECT_DOUBLE_EQ(a.antenna(i).y_m, b.antenna(i).y_m);
  }
}

TEST(AntennaNetwork, MainCityHasLargestWeight) {
  const AntennaNetwork network{small_config()};
  const City& main = network.main_city();
  for (const City& c : network.cities()) {
    EXPECT_LE(c.weight, main.weight);
  }
}

TEST(AntennaNetwork, CityWeightsSumToUrbanFraction) {
  const NetworkConfig config = small_config();
  const AntennaNetwork network{config};
  double total = 0.0;
  for (const City& c : network.cities()) total += c.weight;
  EXPECT_NEAR(total, config.urban_fraction, 1e-9);
}

TEST(AntennaNetwork, UrbanAntennasClusterNearMainCity) {
  const AntennaNetwork network{small_config()};
  const City& main = network.main_city();
  // A meaningful share of antennas must lie within 3 radii of the capital.
  std::size_t close = 0;
  for (const auto& a : network.antennas()) {
    if (geo::planar_distance_m(a, main.center) <= 3.0 * main.radius_m) {
      ++close;
    }
  }
  EXPECT_GT(close, network.size() / 10);
}

TEST(AntennaNetwork, NearestAntennaIsCorrect) {
  const AntennaNetwork network{small_config()};
  const geo::PlanarPoint q{42'000.0, 13'000.0};
  const std::size_t best = network.nearest_antenna(q);
  const double best_d = geo::planar_distance_m(network.antenna(best), q);
  for (std::size_t i = 0; i < network.size(); ++i) {
    EXPECT_LE(best_d, geo::planar_distance_m(network.antenna(i), q) + 1e-9);
  }
}

TEST(AntennaNetwork, AntennasNearReturnsSortedByDistance) {
  const AntennaNetwork network{small_config()};
  const geo::PlanarPoint q{50'000.0, 50'000.0};
  const auto near = network.antennas_near(q, 30'000.0);
  for (std::size_t i = 1; i < near.size(); ++i) {
    EXPECT_LE(geo::planar_distance_m(network.antenna(near[i - 1]), q),
              geo::planar_distance_m(network.antenna(near[i]), q) + 1e-9);
  }
  for (const std::size_t i : near) {
    EXPECT_LE(geo::planar_distance_m(network.antenna(i), q), 30'000.0);
  }
}

TEST(AntennaNetwork, SampleHomePrefersBigCities) {
  const AntennaNetwork network{small_config()};
  util::Xoshiro256 rng{99};
  const City& main = network.main_city();
  std::size_t near_main = 0;
  constexpr std::size_t kDraws = 2'000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t home = network.sample_home(rng);
    if (geo::planar_distance_m(network.antenna(home), main.center) <=
        4.0 * main.radius_m) {
      ++near_main;
    }
  }
  // The capital holds the largest single share of homes.
  EXPECT_GT(near_main, kDraws / 5);
}

TEST(AntennaNetwork, RejectsBadConfig) {
  NetworkConfig config = small_config();
  config.antennas = 0;
  EXPECT_THROW(AntennaNetwork{config}, std::invalid_argument);
  config = small_config();
  config.cities = 0;
  EXPECT_THROW(AntennaNetwork{config}, std::invalid_argument);
  config = small_config();
  config.urban_fraction = 1.5;
  EXPECT_THROW(AntennaNetwork{config}, std::invalid_argument);
}

}  // namespace
}  // namespace glove::synth
