#include "glove/synth/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "glove/analysis/descriptors.hpp"
#include "glove/stats/stats.hpp"

namespace glove::synth {
namespace {

SynthConfig tiny_config() {
  SynthConfig config = civ_like(40, /*seed=*/21);
  config.days = 3.0;
  return config;
}

TEST(Generator, ProducesEventsForEveryUser) {
  SynthConfig config = tiny_config();
  // With silent days disabled, the activity floor guarantees every user
  // produces samples even over a short horizon.
  config.activity.max_inactive_day_prob = 0.0;
  const auto events = generate_events(config);
  std::set<cdr::UserId> users;
  for (const auto& ev : events) users.insert(ev.user);
  EXPECT_EQ(users.size(), 40u);
}

TEST(Generator, InactiveDaysCreateSilentGaps) {
  // The civ preset models raw-CDR silent days: a noticeable share of
  // (user, day) pairs must carry no events, unlike the floor-only config.
  SynthConfig config = civ_like(60, 9);
  config.days = 10.0;
  const auto count_active_days = [&](const SynthConfig& c) {
    std::set<std::pair<cdr::UserId, long long>> active;
    for (const auto& ev : generate_events(c)) {
      active.emplace(ev.user, static_cast<long long>(ev.time_min / 1440.0));
    }
    return active.size();
  };
  SynthConfig no_gaps = config;
  no_gaps.activity.max_inactive_day_prob = 0.0;
  EXPECT_LT(count_active_days(config), count_active_days(no_gaps));
}

TEST(Generator, EventsWithinTimeHorizon) {
  const SynthConfig config = tiny_config();
  for (const auto& ev : generate_events(config)) {
    EXPECT_GE(ev.time_min, 0.0);
    EXPECT_LT(ev.time_min, config.days * 1440.0);
  }
}

TEST(Generator, EventsSortedByUserThenTime) {
  const auto events = generate_events(tiny_config());
  for (std::size_t i = 1; i < events.size(); ++i) {
    const bool ordered =
        events[i - 1].user < events[i].user ||
        (events[i - 1].user == events[i].user &&
         events[i - 1].time_min <= events[i].time_min);
    ASSERT_TRUE(ordered);
  }
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generate_events(tiny_config());
  const auto b = generate_events(tiny_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_DOUBLE_EQ(a[i].time_min, b[i].time_min);
    EXPECT_DOUBLE_EQ(a[i].position.x_m, b[i].position.x_m);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  SynthConfig other = tiny_config();
  other.seed = 9999;
  other.network.seed = 4242;
  const auto a = generate_events(tiny_config());
  const auto b = generate_events(other);
  // Same sizes are possible but identical traces are not.
  bool any_difference = a.size() != b.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].time_min != b[i].time_min ||
                     a[i].position.x_m != b[i].position.x_m;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, DiurnalProfileSuppressesNightActivity) {
  SynthConfig config = civ_like(150, 3);
  config.days = 7.0;
  const auto events = generate_events(config);
  std::size_t night = 0;
  std::size_t day = 0;
  for (const auto& ev : events) {
    const double minute_of_day = std::fmod(ev.time_min, 1440.0);
    if (minute_of_day < 360.0) {
      ++night;  // 00:00-06:00
    } else if (minute_of_day >= 480.0 && minute_of_day < 1200.0) {
      ++day;    // 08:00-20:00
    }
  }
  // Day hours are 2x the night window but must carry far more than 2x
  // the events.
  EXPECT_GT(day, night * 4);
}

TEST(Generator, DatasetHasOriginalGranularity) {
  const cdr::FingerprintDataset data = generate_dataset(tiny_config());
  for (const auto& fp : data.fingerprints()) {
    for (const auto& s : fp.samples()) {
      EXPECT_DOUBLE_EQ(s.sigma.dx, 100.0);
      EXPECT_DOUBLE_EQ(s.sigma.dy, 100.0);
      EXPECT_DOUBLE_EQ(s.tau.dt, 1.0);
    }
  }
  EXPECT_EQ(data.name(), "civ-like");
}

TEST(Generator, SpatialLocalityMatchesCdrProfile) {
  // Median radius of gyration must land in the paper's ballpark (about
  // 2 km median on D4D data; we accept a loose band of 0.2-30 km).
  SynthConfig config = civ_like(120, 17);
  const cdr::FingerprintDataset data = generate_dataset(config);
  const auto descriptor = analysis::describe(data);
  EXPECT_GT(descriptor.median_radius_of_gyration_m, 200.0);
  EXPECT_LT(descriptor.median_radius_of_gyration_m, 30'000.0);
}

TEST(Generator, SenPresetHasMoreHomogeneousActivity) {
  // d4d-sen only retains users active >75% of the period, which trims the
  // population's activity heterogeneity; civ-like keeps the raw lognormal
  // spread.  The per-user rate dispersion (coefficient of variation) must
  // therefore be clearly smaller for sen-like.
  SynthConfig civ = civ_like(250, 5);
  SynthConfig sen = sen_like(250, 5);
  civ.days = 7.0;
  sen.days = 7.0;
  civ.activity.min_events_per_day = 0.0;  // raw civ, pre-screening
  const auto cv = [](const cdr::FingerprintDataset& data) {
    std::vector<double> rates;
    rates.reserve(data.size());
    for (const auto& fp : data.fingerprints()) {
      rates.push_back(static_cast<double>(fp.size()));
    }
    const auto s = stats::summarize(rates);
    return s.stddev / s.mean;
  };
  EXPECT_GT(cv(generate_dataset(civ)), 1.2 * cv(generate_dataset(sen)));
}

TEST(Generator, ActivityFloorKeepsUsersActive) {
  SynthConfig config = sen_like(50, 23);
  config.days = 7.0;
  const cdr::FingerprintDataset data = generate_dataset(config);
  // d4d-sen profile: every retained user is active most days.
  for (const auto& fp : data.fingerprints()) {
    EXPECT_GE(static_cast<double>(fp.size()) / config.days, 1.0);
  }
}

TEST(Generator, LatLonExportRoundTripsRegion) {
  const SynthConfig config = tiny_config();
  const auto planar = generate_events(config);
  const auto geo_events = to_latlon_events(planar, config);
  ASSERT_EQ(geo_events.size(), planar.size());
  // All exported coordinates must be near the region anchor (within ~5 deg).
  for (const auto& ev : geo_events) {
    EXPECT_NEAR(ev.antenna.lat_deg, config.region_anchor.lat_deg, 5.0);
    EXPECT_NEAR(ev.antenna.lon_deg, config.region_anchor.lon_deg, 5.0);
  }
}

TEST(Generator, RejectsBadConfig) {
  SynthConfig config = tiny_config();
  config.users = 0;
  EXPECT_THROW((void)generate_events(config), std::invalid_argument);
  config = tiny_config();
  config.days = 0.0;
  EXPECT_THROW((void)generate_events(config), std::invalid_argument);
}

TEST(DiurnalProfile, HasExpectedShape) {
  const auto& profile = diurnal_profile();
  // Deep night is the minimum; evening peak is the maximum.
  const auto [min_it, max_it] =
      std::minmax_element(profile.begin(), profile.end());
  const auto min_hour = static_cast<int>(min_it - profile.begin());
  const auto max_hour = static_cast<int>(max_it - profile.begin());
  EXPECT_GE(min_hour, 1);
  EXPECT_LE(min_hour, 5);
  EXPECT_GE(max_hour, 16);
  EXPECT_LE(max_hour, 21);
}

}  // namespace
}  // namespace glove::synth
