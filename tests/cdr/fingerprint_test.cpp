#include "glove/cdr/fingerprint.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace glove::cdr {
namespace {

Sample at_time(double t, std::uint32_t contributors = 1) {
  Sample s;
  s.sigma = SpatialExtent{0.0, 100.0, 0.0, 100.0};
  s.tau = TemporalExtent{t, 1.0};
  s.contributors = contributors;
  return s;
}

TEST(Fingerprint, SingleUserConstruction) {
  const Fingerprint fp{7u, {at_time(5.0), at_time(1.0)}};
  EXPECT_EQ(fp.group_size(), 1u);
  ASSERT_EQ(fp.members().size(), 1u);
  EXPECT_EQ(fp.members()[0], 7u);
  EXPECT_EQ(fp.size(), 2u);
}

TEST(Fingerprint, SamplesAreSortedOnConstruction) {
  const Fingerprint fp{1u, {at_time(30.0), at_time(10.0), at_time(20.0)}};
  ASSERT_EQ(fp.size(), 3u);
  EXPECT_DOUBLE_EQ(fp.samples()[0].tau.t, 10.0);
  EXPECT_DOUBLE_EQ(fp.samples()[1].tau.t, 20.0);
  EXPECT_DOUBLE_EQ(fp.samples()[2].tau.t, 30.0);
}

TEST(Fingerprint, GroupConstructionKeepsAllMembers) {
  const Fingerprint fp{{3u, 1u, 2u}, {at_time(0.0)}};
  EXPECT_EQ(fp.group_size(), 3u);
  EXPECT_EQ(fp.representative(), 1u);
}

TEST(Fingerprint, EmptyMemberListRejected) {
  EXPECT_THROW((Fingerprint{std::vector<UserId>{}, {at_time(0.0)}}),
               std::invalid_argument);
}

TEST(Fingerprint, EmptySamplesAllowed) {
  const Fingerprint fp{5u, {}};
  EXPECT_TRUE(fp.empty());
  EXPECT_EQ(fp.size(), 0u);
}

TEST(Fingerprint, TotalContributorsSumsSamples) {
  const Fingerprint fp{1u, {at_time(0.0, 2), at_time(1.0, 3)}};
  EXPECT_EQ(fp.total_contributors(), 5u);
}

TEST(Fingerprint, AbsorbMembersConcatenates) {
  Fingerprint a{1u, {at_time(0.0)}};
  const Fingerprint b{{2u, 3u}, {at_time(1.0)}};
  a.absorb_members(b);
  EXPECT_EQ(a.group_size(), 3u);
  EXPECT_EQ(a.representative(), 1u);
}

TEST(Fingerprint, MutableSamplesWithResort) {
  Fingerprint fp{1u, {at_time(1.0), at_time(2.0)}};
  fp.mutable_samples().push_back(at_time(0.5));
  fp.sort_samples();
  EXPECT_DOUBLE_EQ(fp.samples()[0].tau.t, 0.5);
  EXPECT_EQ(fp.size(), 3u);
}

TEST(Fingerprint, DefaultConstructedHasNoMembers) {
  const Fingerprint fp;
  EXPECT_EQ(fp.group_size(), 0u);
  EXPECT_THROW((void)fp.representative(), std::logic_error);
}

}  // namespace
}  // namespace glove::cdr
