#include "glove/cdr/d4d.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace glove::cdr {
namespace {

TEST(D4DTimestamp, ParsesReferenceDates) {
  // 2000-01-01 00:00 is the epoch.
  EXPECT_DOUBLE_EQ(parse_d4d_timestamp_min("2000-01-01 00:00:00"), 0.0);
  // One day later.
  EXPECT_DOUBLE_EQ(parse_d4d_timestamp_min("2000-01-02 00:00:00"), 1'440.0);
  // Minutes and seconds.
  EXPECT_DOUBLE_EQ(parse_d4d_timestamp_min("2000-01-01 01:30:30"),
                   90.0 + 0.5);
  // Seconds optional.
  EXPECT_DOUBLE_EQ(parse_d4d_timestamp_min("2000-01-01 02:15"), 135.0);
}

TEST(D4DTimestamp, HandlesLeapYears) {
  // 2012-02-29 exists; 2012-03-01 is one day later.
  const double feb29 = parse_d4d_timestamp_min("2012-02-29 00:00:00");
  const double mar01 = parse_d4d_timestamp_min("2012-03-01 00:00:00");
  EXPECT_DOUBLE_EQ(mar01 - feb29, 1'440.0);
  // 2011-2012 spans a leap year boundary: 366 days from 2012-01-01 to
  // 2013-01-01.
  const double y2012 = parse_d4d_timestamp_min("2012-01-01 00:00:00");
  const double y2013 = parse_d4d_timestamp_min("2013-01-01 00:00:00");
  EXPECT_DOUBLE_EQ(y2013 - y2012, 366.0 * 1'440.0);
}

TEST(D4DTimestamp, D4DChallengePeriodParses) {
  // The Ivory Coast dataset covers Dec 2011 - Apr 2012.
  const double start = parse_d4d_timestamp_min("2011-12-05 07:32:04");
  const double end = parse_d4d_timestamp_min("2012-04-22 23:59:59");
  EXPECT_GT(end, start);
  EXPECT_NEAR((end - start) / 1'440.0, 139.7, 0.1);  // ~140 days
}

TEST(D4DTimestamp, RoundTripsThroughFormatter) {
  for (const char* text :
       {"2011-12-05 07:32:00", "2012-02-29 23:59:00", "2000-01-01 00:00:00",
        "2024-06-15 12:30:00"}) {
    EXPECT_EQ(format_d4d_timestamp(parse_d4d_timestamp_min(text)), text);
  }
}

TEST(D4DTimestamp, RejectsMalformedInput) {
  for (const char* bad :
       {"2012/01/01 00:00:00", "2012-1-01 00:00", "not a date",
        "2012-13-01 00:00:00", "2012-01-32 00:00:00", "2012-01-01 25:00:00",
        "2012-01-01", ""}) {
    EXPECT_THROW((void)parse_d4d_timestamp_min(bad), std::invalid_argument)
        << "input: " << bad;
  }
}

TEST(D4DAntennas, ParsesTable) {
  std::istringstream in{
      "# antenna_id,lat,lon\n"
      "1,5.3543,-4.0241\n"
      "2,5.3711,-3.9623\n"};
  const AntennaTable table = read_d4d_antennas(in);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_NEAR(table.at(1).lat_deg, 5.3543, 1e-9);
  EXPECT_NEAR(table.at(2).lon_deg, -3.9623, 1e-9);
}

TEST(D4DAntennas, RejectsDuplicatesAndBadRows) {
  std::istringstream dup{"1,5.0,-4.0\n1,5.1,-4.1\n"};
  EXPECT_THROW((void)read_d4d_antennas(dup), std::invalid_argument);
  std::istringstream bad{"1,5.0\n"};
  EXPECT_THROW((void)read_d4d_antennas(bad), std::invalid_argument);
}

AntennaTable two_antennas() {
  AntennaTable table;
  table.emplace(10, geo::LatLon{5.35, -4.02});
  table.emplace(20, geo::LatLon{5.40, -4.10});
  return table;
}

TEST(D4DTrace, LoadsAndRebasesEvents) {
  std::istringstream in{
      "7,2011-12-05 07:30:00,10\n"
      "7,2011-12-05 19:45:00,20\n"
      "9,2011-12-06 00:15:00,10\n"};
  const D4DTrace trace = read_d4d_trace(in, two_antennas());
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.users, 2u);
  // Rebased to the midnight before the earliest event (2011-12-05 00:00).
  EXPECT_DOUBLE_EQ(trace.events[0].time_min, 7 * 60.0 + 30.0);
  EXPECT_DOUBLE_EQ(trace.events[2].time_min, 1'440.0 + 15.0);
  EXPECT_NEAR(trace.events[1].antenna.lat_deg, 5.40, 1e-9);
}

TEST(D4DTrace, RejectsUnknownAntenna) {
  std::istringstream in{"7,2011-12-05 07:30:00,99\n"};
  EXPECT_THROW((void)read_d4d_trace(in, two_antennas()),
               std::invalid_argument);
}

TEST(D4DTrace, EmptyInputYieldsEmptyTrace) {
  std::istringstream in{"# nothing\n"};
  const D4DTrace trace = read_d4d_trace(in, two_antennas());
  EXPECT_TRUE(trace.events.empty());
  EXPECT_EQ(trace.users, 0u);
}

TEST(D4DTrace, WriteReadRoundTrip) {
  std::vector<D4DRecord> records{
      {7u, parse_d4d_timestamp_min("2011-12-05 07:30:00"), 10},
      {9u, parse_d4d_timestamp_min("2011-12-06 00:15:00"), 20},
  };
  std::ostringstream out;
  write_d4d_trace(out, records);
  std::istringstream in{out.str()};
  const D4DTrace trace = read_d4d_trace(in, two_antennas());
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].user, 7u);
  EXPECT_EQ(trace.events[1].user, 9u);
  EXPECT_DOUBLE_EQ(trace.events[1].time_min - trace.events[0].time_min,
                   (24.0 - 7.5) * 60.0 + 15.0);
}

TEST(D4DTrace, FeedsTheFingerprintBuilder) {
  // End-to-end: D4D files -> events -> fingerprints at 100 m / 1 min.
  std::istringstream in{
      "7,2011-12-05 07:30:10,10\n"
      "7,2011-12-05 07:30:50,10\n"  // same minute, same antenna -> dedup
      "7,2011-12-05 09:00:00,20\n"};
  const D4DTrace trace = read_d4d_trace(in, two_antennas());
  BuilderConfig config;
  config.projection_origin = geo::LatLon{5.37, -4.06};
  const FingerprintDataset data = build_fingerprints(trace.events, config);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].size(), 2u);
}

TEST(D4DFiles, MissingFilesThrow) {
  EXPECT_THROW((void)read_d4d_antennas_file("/nonexistent.csv"),
               std::runtime_error);
  EXPECT_THROW((void)read_d4d_trace_file("/nonexistent.csv", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace glove::cdr
