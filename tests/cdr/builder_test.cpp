#include "glove/cdr/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace glove::cdr {
namespace {

BuilderConfig planar_config() {
  BuilderConfig config;
  config.grid_cell_m = 100.0;
  config.time_step_min = 1.0;
  return config;
}

TEST(Builder, GroupsEventsPerUser) {
  std::vector<PlanarEvent> events{
      {0u, 10.2, {50.0, 50.0}},
      {1u, 11.7, {250.0, 50.0}},
      {0u, 500.9, {1050.0, 950.0}},
  };
  const FingerprintDataset data = build_fingerprints(events, planar_config());
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].members()[0], 0u);
  EXPECT_EQ(data[0].size(), 2u);
  EXPECT_EQ(data[1].members()[0], 1u);
  EXPECT_EQ(data[1].size(), 1u);
}

TEST(Builder, SnapsToGridAndMinute) {
  std::vector<PlanarEvent> events{{0u, 12.7, {151.0, 263.0}}};
  const FingerprintDataset data = build_fingerprints(events, planar_config());
  const Sample& s = data[0].samples()[0];
  EXPECT_DOUBLE_EQ(s.sigma.x, 100.0);
  EXPECT_DOUBLE_EQ(s.sigma.dx, 100.0);
  EXPECT_DOUBLE_EQ(s.sigma.y, 200.0);
  EXPECT_DOUBLE_EQ(s.sigma.dy, 100.0);
  EXPECT_DOUBLE_EQ(s.tau.t, 12.0);
  EXPECT_DOUBLE_EQ(s.tau.dt, 1.0);
}

TEST(Builder, DeduplicatesSameCellSameMinute) {
  std::vector<PlanarEvent> events{
      {0u, 10.1, {50.0, 50.0}},
      {0u, 10.9, {80.0, 20.0}},  // same cell, same minute
      {0u, 10.5, {150.0, 50.0}}, // different cell, same minute
  };
  const FingerprintDataset data = build_fingerprints(events, planar_config());
  EXPECT_EQ(data[0].size(), 2u);
}

TEST(Builder, DeduplicationCanBeDisabled) {
  std::vector<PlanarEvent> events{
      {0u, 10.1, {50.0, 50.0}},
      {0u, 10.9, {80.0, 20.0}},
  };
  BuilderConfig config = planar_config();
  config.deduplicate = false;
  // Without dedup the two events collapse onto the same key only in the
  // map; keep them distinct by disabling dedup -> map insert_or_assign
  // still keeps one.  The builder contract: dedup=false keeps the last
  // event of the key.
  const FingerprintDataset data = build_fingerprints(events, config);
  EXPECT_EQ(data[0].size(), 1u);
}

TEST(Builder, SamplesAreTimeSorted) {
  std::vector<PlanarEvent> events{
      {0u, 500.0, {0.0, 0.0}},
      {0u, 10.0, {1000.0, 0.0}},
      {0u, 250.0, {2000.0, 0.0}},
  };
  const FingerprintDataset data = build_fingerprints(events, planar_config());
  const auto samples = data[0].samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_LT(samples[0].tau.t, samples[1].tau.t);
  EXPECT_LT(samples[1].tau.t, samples[2].tau.t);
}

TEST(Builder, RejectsBadGranularity) {
  std::vector<PlanarEvent> events{{0u, 0.0, {0.0, 0.0}}};
  BuilderConfig config = planar_config();
  config.grid_cell_m = 0.0;
  EXPECT_THROW((void)build_fingerprints(events, config),
               std::invalid_argument);
  config = planar_config();
  config.time_step_min = -1.0;
  EXPECT_THROW((void)build_fingerprints(events, config),
               std::invalid_argument);
}

TEST(Builder, GeographicEventsAreProjected) {
  BuilderConfig config = planar_config();
  config.projection_origin = geo::LatLon{5.345, -4.024};
  std::vector<CdrEvent> events{
      {0u, 10.0, geo::LatLon{5.345, -4.024}},   // at origin
      {0u, 20.0, geo::LatLon{5.345, -3.50}},    // ~58 km east
  };
  const FingerprintDataset data = build_fingerprints(events, config);
  ASSERT_EQ(data[0].size(), 2u);
  const Sample& near = data[0].samples()[0];
  const Sample& far = data[0].samples()[1];
  EXPECT_NEAR(near.sigma.x, 0.0, 100.0);
  EXPECT_GT(far.sigma.x, 50'000.0);
  EXPECT_LT(far.sigma.x, 70'000.0);
}

TEST(Builder, EmptyEventListYieldsEmptyDataset) {
  const FingerprintDataset data =
      build_fingerprints(std::vector<PlanarEvent>{}, planar_config());
  EXPECT_TRUE(data.empty());
}

TEST(Builder, NegativeCoordinatesSupported) {
  std::vector<PlanarEvent> events{{0u, 5.0, {-151.0, -263.0}}};
  const FingerprintDataset data = build_fingerprints(events, planar_config());
  const Sample& s = data[0].samples()[0];
  EXPECT_DOUBLE_EQ(s.sigma.x, -200.0);
  EXPECT_DOUBLE_EQ(s.sigma.y, -300.0);
}

}  // namespace
}  // namespace glove::cdr
