#include "glove/cdr/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"

namespace glove::cdr {
namespace {

TEST(CdrIo, EventsRoundTrip) {
  const std::vector<CdrEvent> events{
      {0u, 12.5, geo::LatLon{5.345, -4.024}},
      {3u, 999.0, geo::LatLon{14.69, -17.44}},
  };
  std::ostringstream out;
  write_cdr_csv(out, events);
  std::istringstream in{out.str()};
  const std::vector<CdrEvent> back = read_cdr_csv(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].user, 0u);
  EXPECT_DOUBLE_EQ(back[0].time_min, 12.5);
  EXPECT_NEAR(back[1].antenna.lat_deg, 14.69, 1e-9);
  EXPECT_NEAR(back[1].antenna.lon_deg, -17.44, 1e-9);
}

TEST(CdrIo, RejectsWrongFieldCount) {
  std::istringstream in{"1,2,3\n"};
  EXPECT_THROW((void)read_cdr_csv(in), std::invalid_argument);
}

TEST(CdrIo, RejectsNegativeUserId) {
  std::istringstream in{"-1,0,5.0,4.0\n"};
  EXPECT_THROW((void)read_cdr_csv(in), std::invalid_argument);
}

TEST(CdrIo, RejectsMalformedNumbers) {
  std::istringstream in{"1,abc,5.0,4.0\n"};
  EXPECT_THROW((void)read_cdr_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RoundTripPreservesStructure) {
  const FingerprintDataset data = test::grouped_io_dataset();
  std::ostringstream out;
  write_dataset_csv(out, data);
  std::istringstream in{out.str()};
  const FingerprintDataset back = read_dataset_csv(in);

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].group_size(), 2u);
  EXPECT_EQ(back[0].members()[0], 1u);
  EXPECT_EQ(back[0].members()[1], 2u);
  EXPECT_EQ(back[1].group_size(), 1u);
  ASSERT_EQ(back[0].size(), 2u);

  const Sample& s = back[0].samples()[1];
  EXPECT_DOUBLE_EQ(s.sigma.dx, 500.0);
  EXPECT_DOUBLE_EQ(s.tau.dt, 30.0);
  EXPECT_EQ(s.contributors, 4u);
}

TEST(DatasetIo, RejectsWrongFieldCount) {
  std::istringstream in{"1,2,3,4\n"};
  EXPECT_THROW((void)read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsNonPositiveContributors) {
  std::istringstream in{"1,0,100,0,100,0,1,0\n"};
  EXPECT_THROW((void)read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, ParsesJoinedMembers) {
  std::istringstream in{"10+20+30,0,100,0,100,5,1,1\n"};
  const FingerprintDataset data = read_dataset_csv(in);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].group_size(), 3u);
  EXPECT_EQ(data[0].members()[2], 30u);
}

TEST(DatasetIo, RejectsEmptyMembersField) {
  std::istringstream in{",0,100,0,100,5,1,1\n"};
  EXPECT_THROW((void)read_dataset_csv(in), std::invalid_argument);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)read_cdr_file("/nonexistent/path.csv"),
               std::runtime_error);
  EXPECT_THROW((void)read_dataset_file("/nonexistent/path.csv"),
               std::runtime_error);
}

TEST(FileIo, WriteAndReadBack) {
  const test::TempDir dir;
  const FingerprintDataset data = test::grouped_io_dataset();
  const FingerprintDataset back = test::dataset_file_roundtrip(dir, data);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.total_samples(), 3u);
  test::expect_datasets_near(back, data);
}

TEST(FileIo, TempDirKeepsConcurrentSuitesApart) {
  const test::TempDir a;
  const test::TempDir b;
  EXPECT_NE(a.path(), b.path());
  write_dataset_file(a.file("data.csv"), test::grouped_io_dataset());
  EXPECT_THROW((void)read_dataset_file(b.file("data.csv")),
               std::runtime_error);
}

TEST(DatasetIo, SerializationMatchesGoldenFile) {
  // Locks the on-disk CSV format: field order, member joining, float
  // formatting.  Changing the format is a compatibility break and must be
  // an explicit decision (re-bless with GLOVE_UPDATE_GOLDEN=1).
  test::expect_matches_golden("io_dataset.csv",
                              test::dataset_to_csv(test::grouped_io_dataset()));
}

}  // namespace
}  // namespace glove::cdr
