#include "glove/cdr/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"

namespace glove::cdr {
namespace {

TEST(CdrIo, EventsRoundTrip) {
  const std::vector<CdrEvent> events{
      {0u, 12.5, geo::LatLon{5.345, -4.024}},
      {3u, 999.0, geo::LatLon{14.69, -17.44}},
  };
  std::ostringstream out;
  write_cdr_csv(out, events);
  std::istringstream in{out.str()};
  const std::vector<CdrEvent> back = read_cdr_csv(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].user, 0u);
  EXPECT_DOUBLE_EQ(back[0].time_min, 12.5);
  EXPECT_NEAR(back[1].antenna.lat_deg, 14.69, 1e-9);
  EXPECT_NEAR(back[1].antenna.lon_deg, -17.44, 1e-9);
}

TEST(CdrIo, RejectsWrongFieldCount) {
  std::istringstream in{"1,2,3\n"};
  EXPECT_THROW((void)read_cdr_csv(in), std::invalid_argument);
}

TEST(CdrIo, RejectsNegativeUserId) {
  std::istringstream in{"-1,0,5.0,4.0\n"};
  EXPECT_THROW((void)read_cdr_csv(in), std::invalid_argument);
}

TEST(CdrIo, RejectsMalformedNumbers) {
  std::istringstream in{"1,abc,5.0,4.0\n"};
  EXPECT_THROW((void)read_cdr_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RoundTripPreservesStructure) {
  const FingerprintDataset data = test::grouped_io_dataset();
  std::ostringstream out;
  write_dataset_csv(out, data);
  std::istringstream in{out.str()};
  const FingerprintDataset back = read_dataset_csv(in);

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].group_size(), 2u);
  EXPECT_EQ(back[0].members()[0], 1u);
  EXPECT_EQ(back[0].members()[1], 2u);
  EXPECT_EQ(back[1].group_size(), 1u);
  ASSERT_EQ(back[0].size(), 2u);

  const Sample& s = back[0].samples()[1];
  EXPECT_DOUBLE_EQ(s.sigma.dx, 500.0);
  EXPECT_DOUBLE_EQ(s.tau.dt, 30.0);
  EXPECT_EQ(s.contributors, 4u);
}

TEST(DatasetIo, RejectsWrongFieldCount) {
  std::istringstream in{"1,2,3,4\n"};
  EXPECT_THROW((void)read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsNonPositiveContributors) {
  std::istringstream in{"1,0,100,0,100,0,1,0\n"};
  EXPECT_THROW((void)read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, ParsesJoinedMembers) {
  std::istringstream in{"10+20+30,0,100,0,100,5,1,1\n"};
  const FingerprintDataset data = read_dataset_csv(in);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].group_size(), 3u);
  EXPECT_EQ(data[0].members()[2], 30u);
}

TEST(DatasetIo, RejectsEmptyMembersField) {
  std::istringstream in{",0,100,0,100,5,1,1\n"};
  EXPECT_THROW((void)read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsDuplicateMemberIds) {
  // A duplicated id would double-count the group size k relies on.
  for (const char* text : {"7+7,0,100,0,100,5,1,1\n",
                           "3+7+3,0,100,0,100,5,1,1\n"}) {
    std::istringstream in{text};
    try {
      (void)read_dataset_csv(in);
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("duplicate user id"), std::string::npos)
          << message;
      EXPECT_NE(message.find("line 1"), std::string::npos) << message;
    }
  }
}

TEST(DatasetIo, WriteReadWriteIsIdempotent) {
  // Doubles with no short decimal form (thirds, 0.1-style fractions,
  // huge/tiny magnitudes): the shortest-round-trip formatter must reparse
  // to the exact same bits, so a second write produces the same bytes.
  // The previous 10-significant-digit formatting failed this.
  std::vector<Fingerprint> fingerprints;
  fingerprints.emplace_back(
      1u, std::vector<Sample>{
              Sample{SpatialExtent{1.0 / 3.0, 0.1, -7.3e5, 2e-3},
                     TemporalExtent{123456.789012345, 1.0 / 7.0}, 2u},
              Sample{SpatialExtent{1e9 + 0.25, 5e-324, 0.30000000000000004,
                                   1e22},
                     TemporalExtent{-0.0, 2.2250738585072014e-308}, 1u}});
  const FingerprintDataset data{std::move(fingerprints), "awkward"};

  std::ostringstream first;
  write_dataset_csv(first, data);
  std::istringstream in{first.str()};
  const FingerprintDataset back = read_dataset_csv(in);
  ASSERT_EQ(back.size(), 1u);
  ASSERT_EQ(back[0].size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back[0].samples()[i], data[0].samples()[i]) << "sample " << i;
  }

  std::ostringstream second;
  DatasetStreamWriter writer{second};
  writer.begin(data.name());
  for (const Fingerprint& fp : back.fingerprints()) writer.write(fp);
  std::ostringstream expected;
  DatasetStreamWriter expected_writer{expected};
  expected_writer.begin(data.name());
  for (const Fingerprint& fp : data.fingerprints()) expected_writer.write(fp);
  EXPECT_EQ(second.str(), expected.str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)read_cdr_file("/nonexistent/path.csv"),
               std::runtime_error);
  EXPECT_THROW((void)read_dataset_file("/nonexistent/path.csv"),
               std::runtime_error);
}

TEST(FileIo, WriteAndReadBack) {
  const test::TempDir dir;
  const FingerprintDataset data = test::grouped_io_dataset();
  const FingerprintDataset back = test::dataset_file_roundtrip(dir, data);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.total_samples(), 3u);
  test::expect_datasets_near(back, data);
}

TEST(FileIo, TempDirKeepsConcurrentSuitesApart) {
  const test::TempDir a;
  const test::TempDir b;
  EXPECT_NE(a.path(), b.path());
  write_dataset_file(a.file("data.csv"), test::grouped_io_dataset());
  EXPECT_THROW((void)read_dataset_file(b.file("data.csv")),
               std::runtime_error);
}

TEST(DatasetIo, SerializationMatchesGoldenFile) {
  // Locks the on-disk CSV format: field order, member joining, float
  // formatting.  Changing the format is a compatibility break and must be
  // an explicit decision (re-bless with GLOVE_UPDATE_GOLDEN=1).
  test::expect_matches_golden("io_dataset.csv",
                              test::dataset_to_csv(test::grouped_io_dataset()));
}

TEST(StreamingIo, CdrEventReaderMatchesBulkReader) {
  const std::vector<CdrEvent> events{
      {0u, 12.5, geo::LatLon{5.345, -4.024}},
      {3u, 999.0, geo::LatLon{14.69, -17.44}},
      {0u, 1001.0, geo::LatLon{5.350, -4.030}},
  };
  std::ostringstream trace;
  write_cdr_csv(trace, events);

  std::istringstream bulk_in{trace.str()};
  const std::vector<CdrEvent> bulk = read_cdr_csv(bulk_in);

  std::istringstream stream_in{trace.str()};
  CdrEventReader reader{stream_in};
  std::vector<CdrEvent> streamed;
  CdrEvent event;
  while (reader.next(event)) streamed.push_back(event);

  ASSERT_EQ(streamed.size(), bulk.size());
  EXPECT_EQ(reader.rows_read(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(streamed[i].user, bulk[i].user);
    EXPECT_DOUBLE_EQ(streamed[i].time_min, bulk[i].time_min);
  }
}

TEST(StreamingIo, DatasetStreamReaderYieldsOneFingerprintPerRun) {
  // Files written by write_dataset_csv keep group rows contiguous, so the
  // streaming reader reproduces the bulk reader exactly — while holding
  // only one fingerprint at a time.
  const FingerprintDataset data = test::small_synth_dataset(10);
  std::ostringstream out;
  write_dataset_csv(out, data);

  std::istringstream bulk_in{out.str()};
  const FingerprintDataset bulk = read_dataset_csv(bulk_in);

  std::istringstream stream_in{out.str()};
  DatasetStreamReader reader{stream_in};
  std::vector<Fingerprint> streamed;
  Fingerprint fp;
  while (reader.next(fp)) streamed.push_back(std::move(fp));

  ASSERT_EQ(streamed.size(), bulk.size());
  EXPECT_EQ(test::dataset_to_csv(FingerprintDataset{std::move(streamed)}),
            test::dataset_to_csv(bulk));
}

TEST(StreamingIo, BulkReaderCoalescesInterleavedRuns) {
  // Interleaved group rows: the streaming reader reports one fingerprint
  // per contiguous run, while the bulk reader preserves the historical
  // merge-by-key-in-first-seen-order behaviour.
  const std::string text =
      "7,0,100,0,100,10,1,1\n"
      "9,500,100,500,100,20,1,1\n"
      "7,0,100,0,100,30,1,1\n";

  std::istringstream stream_in{text};
  DatasetStreamReader reader{stream_in};
  Fingerprint fp;
  std::size_t runs = 0;
  while (reader.next(fp)) ++runs;
  EXPECT_EQ(runs, 3u);

  std::istringstream bulk_in{text};
  const FingerprintDataset bulk = read_dataset_csv(bulk_in);
  ASSERT_EQ(bulk.size(), 2u);
  EXPECT_EQ(bulk[0].members()[0], 7u);
  EXPECT_EQ(bulk[0].size(), 2u);  // both runs of user 7 coalesced
  EXPECT_EQ(bulk[1].members()[0], 9u);
}

TEST(StreamingIo, StreamReaderRejectsMalformedRows) {
  std::istringstream in{"7,0,100,0,100,10,1,0\n"};  // contributors < 1
  DatasetStreamReader reader{in};
  Fingerprint fp;
  EXPECT_THROW((void)reader.next(fp), std::invalid_argument);
}

TEST(StreamingIo, StreamReaderRejectsTruncatedRows) {
  // A row cut mid-write (fewer than 8 fields) is a hard error, not a
  // silently shorter sample — truncation must never pass as data.
  for (const char* text : {"7,0,100,0,100\n",                // truncated row
                           "7,0,100,0,100,10,1,1\n7,0,100\n",  // mid-file
                           "7,0,100,0,100,10,1\n"}) {          // one short
    std::istringstream in{text};
    DatasetStreamReader reader{in};
    Fingerprint fp;
    EXPECT_THROW(
        {
          while (reader.next(fp)) {
          }
        },
        std::invalid_argument)
        << text;
  }
}

TEST(StreamingIo, HandlesCrlfLineEndings) {
  // Windows-edited traces terminate rows with \r\n; the trailing \r must
  // not leak into the last field of either reader.
  std::istringstream dataset_in{
      "# comment\r\n7,0,100,0,100,10,1,1\r\n7,0,100,0,100,20,1,1\r\n"};
  DatasetStreamReader reader{dataset_in};
  Fingerprint fp;
  ASSERT_TRUE(reader.next(fp));
  ASSERT_EQ(fp.size(), 2u);
  EXPECT_EQ(fp.samples()[0].contributors, 1u);
  EXPECT_FALSE(reader.next(fp));

  std::istringstream cdr_in{"3,12.5,5.1,-4.2\r\n"};
  CdrEventReader events{cdr_in};
  CdrEvent event;
  ASSERT_TRUE(events.next(event));
  EXPECT_DOUBLE_EQ(event.antenna.lon_deg, -4.2);
}

TEST(StreamingIo, InterleavedGroupRunsStreamAsSeparateRuns) {
  // Keys that alternate row-by-row (the worst interleaving) yield one
  // fingerprint per run and never mix samples across keys.
  const std::string text =
      "1,0,100,0,100,10,1,1\n"
      "2,900,100,900,100,20,1,1\n"
      "1,0,100,0,100,30,1,1\n"
      "2,900,100,900,100,40,1,1\n";
  std::istringstream in{text};
  DatasetStreamReader reader{in};
  Fingerprint fp;
  std::vector<UserId> run_users;
  while (reader.next(fp)) {
    ASSERT_EQ(fp.size(), 1u);
    run_users.push_back(fp.members()[0]);
  }
  EXPECT_EQ(run_users, (std::vector<UserId>{1u, 2u, 1u, 2u}));
}

TEST(StreamingIo, RewindAfterEofRestartsBothReaders) {
  const FingerprintDataset data = test::small_synth_dataset(6);
  std::stringstream stream;
  write_dataset_csv(stream, data);

  DatasetStreamReader reader{stream};
  Fingerprint fp;
  std::size_t first_pass = 0;
  while (reader.next(fp)) ++first_pass;
  EXPECT_EQ(first_pass, data.size());
  EXPECT_FALSE(reader.next(fp));  // EOF is stable

  reader.rewind();
  std::size_t second_pass = 0;
  while (reader.next(fp)) ++second_pass;
  EXPECT_EQ(second_pass, first_pass);

  // Rewinding mid-run discards the buffered pending run too.
  reader.rewind();
  ASSERT_TRUE(reader.next(fp));
  reader.rewind();
  std::size_t third_pass = 0;
  while (reader.next(fp)) ++third_pass;
  EXPECT_EQ(third_pass, first_pass);
}

TEST(StreamingIo, RewindOnUnseekableStreamThrows) {
  // A reader over a non-seekable stream (pipes, sockets — modelled here
  // by the default streambuf, whose seekoff always fails) must surface
  // the problem instead of silently re-reading nothing.
  struct NoSeekBuf : std::streambuf {};
  NoSeekBuf buffer;
  std::istream in{&buffer};
  DatasetStreamReader reader{in};
  EXPECT_THROW(reader.rewind(), std::runtime_error);
}

TEST(FileIo, ParseFailuresReportPathAndLineNumber) {
  const test::TempDir dir;

  const std::string dataset_path = dir.file("broken_dataset.csv");
  std::ofstream{dataset_path}
      << "1,0,100,0,100,10,1,1\n1,0,100,0,100,oops,1,1\n";
  try {
    (void)read_dataset_file(dataset_path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(dataset_path), std::string::npos) << message;
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }

  const std::string cdr_path = dir.file("broken_trace.csv");
  std::ofstream{cdr_path} << "# header\n1,2,3\n";
  try {
    (void)read_cdr_file(cdr_path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(cdr_path), std::string::npos) << message;
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }
}

TEST(StreamingIo, EventReaderPrefixesPathOnMalformedRows) {
  std::istringstream in{"1,10,6.8,-5.3\n2,oops,6.8,-5.3\n"};
  CdrEventReader reader{in, "stream.csv"};
  CdrEvent event;
  ASSERT_TRUE(reader.next(event));
  try {
    (void)reader.next(event);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("stream.csv"), std::string::npos) << message;
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }
}

TEST(TailIo, MissingFileRetriesOnNextPoll) {
  const test::TempDir dir;
  const std::string path = dir.file("late.csv");
  CdrEventTailReader reader{path};
  CdrEvent event;
  EXPECT_FALSE(reader.poll(event));  // not an error: the file may appear
  EXPECT_FALSE(reader.opened());
  std::ofstream{path} << "7,12.5,6.8,-5.3\n";
  ASSERT_TRUE(reader.poll(event));
  EXPECT_TRUE(reader.opened());
  EXPECT_EQ(event.user, 7u);
  EXPECT_DOUBLE_EQ(event.time_min, 12.5);
  EXPECT_FALSE(reader.poll(event));  // EOF until more is appended
}

TEST(TailIo, ToleratesPartialTrailingLineUntilCompleted) {
  // A live producer may be mid-append when we poll: the torn last row
  // must not parse (or throw) — it is retried once the newline lands.
  const test::TempDir dir;
  const std::string path = dir.file("tail.csv");
  std::ofstream{path} << "1,10,6.8,-5.3\n2,11,6.";  // torn second row
  CdrEventTailReader reader{path};
  CdrEvent event;
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 1u);
  EXPECT_FALSE(reader.poll(event));  // partial row: wait, don't fail
  EXPECT_EQ(reader.rows_read(), 1u);

  std::ofstream{path, std::ios::app} << "8,-5.3\n3,12,6.8,-5.3\n";
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 2u);
  EXPECT_DOUBLE_EQ(event.antenna.lat_deg, 6.8);  // "6." + "8" reassembled
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 3u);
  EXPECT_FALSE(reader.poll(event));
  EXPECT_EQ(reader.rows_read(), 3u);
}

TEST(TailIo, SkipsCommentsBlanksAndCrlf) {
  const test::TempDir dir;
  const std::string path = dir.file("mixed.csv");
  std::ofstream{path} << "# header\r\n\r\n1,10,6.8,-5.3\r\n\n2,11,6.8,-5.3\n";
  CdrEventTailReader reader{path};
  CdrEvent event;
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 1u);
  EXPECT_DOUBLE_EQ(event.antenna.lon_deg, -5.3);  // no trailing \r
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 2u);
  EXPECT_FALSE(reader.poll(event));
}

TEST(TailIo, TruncationRestartsFromByteZero) {
  // A producer that restarts its feed rewrites the file smaller than the
  // consumed offset; seeking past the new end would tail nothing forever.
  const test::TempDir dir;
  const std::string path = dir.file("trunc.csv");
  std::ofstream{path} << "1,10,6.8,-5.3\n2,11,6.8,-5.3\n3,12,6.8,-5.3\n";
  CdrEventTailReader reader{path};
  CdrEvent event;
  for (std::uint64_t user = 1; user <= 3; ++user) {
    ASSERT_TRUE(reader.poll(event));
    EXPECT_EQ(event.user, user);
  }
  // Rewrite in place, smaller: same inode, shrunken size.
  std::ofstream{path, std::ios::trunc} << "9,20,6.8,-5.3\n";
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 9u);
  EXPECT_EQ(reader.line_number(), 1u);  // restarted with the new file
  EXPECT_EQ(reader.rows_read(), 4u);    // cumulative across the restart
  EXPECT_FALSE(reader.poll(event));
}

TEST(TailIo, RotationReopensTheNewFile) {
  // logrotate-style swap: the consumed file moves aside and a fresh one
  // takes over the path.  The reader must follow the path, not the inode.
  const test::TempDir dir;
  const std::string path = dir.file("rotate.csv");
  std::ofstream{path} << "1,10,6.8,-5.3\n2,11,6.8,-5.3\n";
  CdrEventTailReader reader{path};
  CdrEvent event;
  ASSERT_TRUE(reader.poll(event));
  ASSERT_TRUE(reader.poll(event));
  EXPECT_EQ(event.user, 2u);

  std::filesystem::rename(path, dir.file("rotate.csv.1"));
  EXPECT_FALSE(reader.poll(event));  // gap until the new file appears
  std::ofstream{path} << "5,30,6.8,-5.3\n6,31,6.8,-5.3\n7,32,6.8,-5.3\n";
  for (std::uint64_t user = 5; user <= 7; ++user) {
    ASSERT_TRUE(reader.poll(event));
    EXPECT_EQ(event.user, user);
  }
  EXPECT_EQ(reader.rows_read(), 5u);
  EXPECT_FALSE(reader.poll(event));
}

TEST(TailIo, MalformedRowThrowsWithPathAndLine) {
  const test::TempDir dir;
  const std::string path = dir.file("bad.csv");
  std::ofstream{path} << "# header\n1,10,6.8,-5.3\n-4,11,6.8,-5.3\n";
  CdrEventTailReader reader{path};
  CdrEvent event;
  ASSERT_TRUE(reader.poll(event));
  try {
    (void)reader.poll(event);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path), std::string::npos) << message;
    EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  }
}

TEST(StreamingIo, DatasetStreamWriterMatchesBulkWriter) {
  const FingerprintDataset data = test::small_synth_dataset(8);
  std::ostringstream bulk;
  write_dataset_csv(bulk, data);

  std::ostringstream streamed;
  DatasetStreamWriter writer{streamed};
  writer.begin(data.name());
  for (const Fingerprint& fp : data.fingerprints()) writer.write(fp);
  EXPECT_EQ(streamed.str(), bulk.str());
}

}  // namespace
}  // namespace glove::cdr
