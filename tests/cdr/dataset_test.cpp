#include "glove/cdr/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace glove::cdr {
namespace {

Sample sample_at(double x, double y, double t) {
  Sample s;
  s.sigma = SpatialExtent{x, 100.0, y, 100.0};
  s.tau = TemporalExtent{t, 1.0};
  return s;
}

FingerprintDataset make_dataset() {
  std::vector<Fingerprint> fps;
  // User 0: 4 samples over 2 days, near origin.
  fps.emplace_back(0u, std::vector<Sample>{sample_at(0, 0, 60),
                                           sample_at(100, 0, 720),
                                           sample_at(0, 100, 1500),
                                           sample_at(0, 0, 2800)});
  // User 1: 2 samples, far away (100 km).
  fps.emplace_back(1u, std::vector<Sample>{sample_at(100'000, 100'000, 30),
                                           sample_at(100'000, 100'100, 2000)});
  // User 2: 1 sample near origin.
  fps.emplace_back(2u, std::vector<Sample>{sample_at(200, 200, 1000)});
  return FingerprintDataset{std::move(fps), "test"};
}

TEST(FingerprintDataset, BasicAccessors) {
  const FingerprintDataset data = make_dataset();
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(data.total_samples(), 7u);
  EXPECT_EQ(data.total_users(), 3u);
  EXPECT_NEAR(data.mean_fingerprint_length(), 7.0 / 3.0, 1e-12);
  EXPECT_EQ(data.name(), "test");
}

TEST(FingerprintDataset, TimeSpanCoversAllSamples) {
  const auto span = make_dataset().time_span();
  EXPECT_DOUBLE_EQ(span.begin_min, 30.0);
  EXPECT_DOUBLE_EQ(span.end_min, 2801.0);  // last start + dt
}

TEST(FingerprintDataset, EmptyDatasetTimeSpanIsZero) {
  const FingerprintDataset empty;
  const auto span = empty.time_span();
  EXPECT_DOUBLE_EQ(span.begin_min, 0.0);
  EXPECT_DOUBLE_EQ(span.end_min, 0.0);
}

TEST(FilterMinActivity, DropsLowActivityUsers) {
  const FingerprintDataset data = make_dataset();
  // 2-day window; require >= 1.5 samples/day -> only user 0 (4 samples).
  const FingerprintDataset kept = filter_min_activity(data, 1.5, 2.0);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].members()[0], 0u);
}

TEST(FilterMinActivity, KeepsEveryoneWithZeroThreshold) {
  const FingerprintDataset data = make_dataset();
  EXPECT_EQ(filter_min_activity(data, 0.0, 2.0).size(), 3u);
}

TEST(FilterMinActivity, RejectsBadTimespan) {
  EXPECT_THROW((void)filter_min_activity(make_dataset(), 1.0, 0.0),
               std::invalid_argument);
}

TEST(CutTimeWindow, KeepsOnlySamplesInside) {
  const FingerprintDataset cut = cut_time_window(make_dataset(), 0.0, 1440.0);
  // User 0 keeps 2 samples (t=60, 720); user 1 keeps t=30; user 2 keeps 1000.
  EXPECT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut.total_samples(), 4u);
}

TEST(CutTimeWindow, DropsUsersLeftEmpty) {
  const FingerprintDataset cut =
      cut_time_window(make_dataset(), 2500.0, 4000.0);
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0].members()[0], 0u);
}

TEST(CutTimeWindow, RejectsEmptyWindow) {
  EXPECT_THROW((void)cut_time_window(make_dataset(), 10.0, 10.0),
               std::invalid_argument);
}

TEST(FilterGeofence, KeepsUsersMostlyInside) {
  // Box of 10 km around the origin: users 0 and 2 are inside, user 1 out.
  const FingerprintDataset city =
      filter_geofence(make_dataset(), 0.0, 0.0, 10'000.0, 0.8);
  EXPECT_EQ(city.size(), 2u);
}

TEST(FilterGeofence, FractionThresholdMatters) {
  std::vector<Fingerprint> fps;
  // Half the samples inside the box, half outside.
  fps.emplace_back(0u, std::vector<Sample>{sample_at(0, 0, 0),
                                           sample_at(50'000, 0, 100)});
  const FingerprintDataset data{std::move(fps)};
  EXPECT_EQ(filter_geofence(data, 0, 0, 1'000, 0.9).size(), 0u);
  ASSERT_EQ(filter_geofence(data, 0, 0, 1'000, 0.5).size(), 1u);
  // The outside sample is dropped from the kept fingerprint.
  EXPECT_EQ(filter_geofence(data, 0, 0, 1'000, 0.5)[0].size(), 1u);
}

TEST(FilterGeofence, RejectsBadRadius) {
  EXPECT_THROW((void)filter_geofence(make_dataset(), 0, 0, -1.0),
               std::invalid_argument);
}

TEST(SubsampleUsers, FullFractionKeepsAll) {
  const FingerprintDataset data = make_dataset();
  EXPECT_EQ(subsample_users(data, 1.0, 1).size(), 3u);
}

TEST(SubsampleUsers, IsDeterministicInSeed) {
  const FingerprintDataset data = make_dataset();
  const auto a = subsample_users(data, 0.5, 42);
  const auto b = subsample_users(data, 0.5, 42);
  EXPECT_EQ(a.size(), b.size());
}

TEST(SubsampleUsers, FractionRoughlyRespected) {
  std::vector<Fingerprint> fps;
  for (UserId u = 0; u < 2'000; ++u) {
    fps.emplace_back(u, std::vector<Sample>{sample_at(0, 0, u)});
  }
  const FingerprintDataset data{std::move(fps)};
  const auto half = subsample_users(data, 0.5, 9);
  EXPECT_NEAR(static_cast<double>(half.size()), 1'000.0, 100.0);
}

TEST(SubsampleUsers, RejectsBadFraction) {
  EXPECT_THROW((void)subsample_users(make_dataset(), 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)subsample_users(make_dataset(), 1.5, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace glove::cdr
