#include "glove/cdr/sample.hpp"

#include <gtest/gtest.h>

namespace glove::cdr {
namespace {

Sample make_sample(double x, double dx, double y, double dy, double t,
                   double dt) {
  Sample s;
  s.sigma = SpatialExtent{x, dx, y, dy};
  s.tau = TemporalExtent{t, dt};
  return s;
}

TEST(SpatialExtent, EndpointsAndAccuracy) {
  const SpatialExtent e{100.0, 50.0, 200.0, 80.0};
  EXPECT_DOUBLE_EQ(e.x_end(), 150.0);
  EXPECT_DOUBLE_EQ(e.y_end(), 280.0);
  EXPECT_DOUBLE_EQ(e.accuracy_m(), 80.0);  // max of dx, dy
}

TEST(TemporalExtent, EndpointAndAccuracy) {
  const TemporalExtent e{60.0, 15.0};
  EXPECT_DOUBLE_EQ(e.t_end(), 75.0);
  EXPECT_DOUBLE_EQ(e.accuracy_min(), 15.0);
}

TEST(Sample, DefaultContributorsIsOne) {
  const Sample s;
  EXPECT_EQ(s.contributors, 1u);
}

TEST(ByTime, OrdersByStartThenEnd) {
  const Sample early = make_sample(0, 1, 0, 1, 10.0, 5.0);
  const Sample late = make_sample(0, 1, 0, 1, 20.0, 5.0);
  EXPECT_TRUE(by_time(early, late));
  EXPECT_FALSE(by_time(late, early));

  const Sample short_iv = make_sample(0, 1, 0, 1, 10.0, 2.0);
  const Sample long_iv = make_sample(0, 1, 0, 1, 10.0, 9.0);
  EXPECT_TRUE(by_time(short_iv, long_iv));
}

TEST(TimeOverlaps, DetectsOverlap) {
  const Sample a = make_sample(0, 1, 0, 1, 0.0, 10.0);
  const Sample b = make_sample(0, 1, 0, 1, 5.0, 10.0);
  EXPECT_TRUE(time_overlaps(a, b));
  EXPECT_TRUE(time_overlaps(b, a));
}

TEST(TimeOverlaps, TouchingIntervalsDoNotOverlap) {
  const Sample a = make_sample(0, 1, 0, 1, 0.0, 10.0);
  const Sample b = make_sample(0, 1, 0, 1, 10.0, 5.0);
  EXPECT_FALSE(time_overlaps(a, b));
  EXPECT_FALSE(time_overlaps(b, a));
}

TEST(TimeOverlaps, DisjointIntervals) {
  const Sample a = make_sample(0, 1, 0, 1, 0.0, 5.0);
  const Sample b = make_sample(0, 1, 0, 1, 100.0, 5.0);
  EXPECT_FALSE(time_overlaps(a, b));
}

TEST(TimeOverlaps, ContainmentOverlaps) {
  const Sample outer = make_sample(0, 1, 0, 1, 0.0, 100.0);
  const Sample inner = make_sample(0, 1, 0, 1, 40.0, 10.0);
  EXPECT_TRUE(time_overlaps(outer, inner));
  EXPECT_TRUE(time_overlaps(inner, outer));
}

TEST(Sample, EqualityIsMemberwise) {
  const Sample a = make_sample(1, 2, 3, 4, 5, 6);
  Sample b = a;
  EXPECT_EQ(a, b);
  b.contributors = 2;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace glove::cdr
