// glovebin format: lossless round-trips, footer index consistency, magic
// sniffing and rejection of corrupt files.  The format's contract is
// byte-exactness — a dataset written to glovebin and read back must
// serialize to the identical CSV text — so these tests compare full CSV
// serializations, not tolerant extents.

#include "glove/cdr/binio.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/scalability.hpp"

namespace glove::cdr {
namespace {

FingerprintDataset awkward_dataset() {
  // Values with no short decimal form plus an empty-sample fingerprint:
  // the cases the binary format exists to keep exact.
  std::vector<Fingerprint> fingerprints;
  fingerprints.emplace_back(
      3u, std::vector<Sample>{
              Sample{SpatialExtent{1.0 / 3.0, 0.1, -7.3e5, 2e-3},
                     TemporalExtent{123456.789012345, 1.0 / 7.0}, 2u},
              Sample{SpatialExtent{1e9 + 0.25, 5e-324, 0.1 + 0.2, 1e22},
                     TemporalExtent{-0.0, 2.2250738585072014e-308}, 1u}});
  fingerprints.emplace_back(7u, std::vector<Sample>{});  // suppressed user
  fingerprints.emplace_back(
      std::vector<UserId>{9u, 4u},
      std::vector<Sample>{Sample{SpatialExtent{0.0, 100.0, 0.0, 100.0},
                                 TemporalExtent{5.0, 1.0}, 3u}});
  return FingerprintDataset{std::move(fingerprints), "awkward"};
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in},
          std::istreambuf_iterator<char>{}};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Glovebin, RoundTripIsByteExact) {
  test::TempDir dir;
  for (const FingerprintDataset& data :
       {awkward_dataset(), test::grouped_io_dataset(),
        test::random_dataset(40, 11)}) {
    const std::string path = dir.file(data.name() + ".glovebin");
    write_dataset_glovebin_file(path, data);
    const FingerprintDataset back = read_dataset_glovebin_file(path);
    EXPECT_EQ(back.name(), data.name());
    ASSERT_EQ(back.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_TRUE(std::ranges::equal(back[i].members(), data[i].members()))
          << "fingerprint " << i;
    }
    // CSV text equality is the strongest statement of losslessness: every
    // double survived bit for bit and every sample kept its position.
    EXPECT_EQ(test::dataset_to_csv(back), test::dataset_to_csv(data))
        << data.name();
  }
}

TEST(Glovebin, SniffsMagicBytes) {
  test::TempDir dir;
  const std::string bin = dir.file("data.glovebin");
  write_dataset_glovebin_file(bin, test::grouped_io_dataset());
  EXPECT_TRUE(is_glovebin_file(bin));

  const std::string csv = dir.file("data.csv");
  write_dataset_file(csv, test::grouped_io_dataset());
  EXPECT_FALSE(is_glovebin_file(csv));

  EXPECT_FALSE(is_glovebin_file(dir.file("missing.glovebin")));
  const std::string stub = dir.file("short.glovebin");
  write_file(stub, "glo");  // shorter than the magic
  EXPECT_FALSE(is_glovebin_file(stub));
}

TEST(Glovebin, SummariesMatchFingerprintBoundsBitExactly) {
  test::TempDir dir;
  const FingerprintDataset data = test::random_dataset(25, 3);
  const std::string path = dir.file("summaries.glovebin");
  write_dataset_glovebin_file(path, data);

  GlovebinReader reader{path};
  ASSERT_EQ(reader.fingerprint_count(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const core::FingerprintBounds bounds = core::fingerprint_bounds(data[i]);
    const FingerprintSummary& s = reader.summaries()[i];
    EXPECT_EQ(s.x, bounds.box.x);
    EXPECT_EQ(s.dx, bounds.box.dx);
    EXPECT_EQ(s.y, bounds.box.y);
    EXPECT_EQ(s.dy, bounds.box.dy);
    EXPECT_EQ(s.t, bounds.interval.t);
    EXPECT_EQ(s.dt, bounds.interval.dt);
    EXPECT_EQ(s.group_size, data[i].group_size());
    EXPECT_EQ(s.sample_count, data[i].size());
  }
}

TEST(Glovebin, BlockIndexIsContiguousAndSeekable) {
  test::TempDir dir;
  const FingerprintDataset data = test::random_dataset(10, 7);
  const std::string path = dir.file("blocks.glovebin");
  {
    GlovebinWriter writer{path, /*block_fingerprints=*/4};
    writer.begin(data.name());
    for (const Fingerprint& fp : data.fingerprints()) writer.write(fp);
    writer.finish();
  }

  GlovebinReader reader{path};
  ASSERT_EQ(reader.block_count(), 3u);  // 4 + 4 + 2 fingerprints
  std::uint64_t next_first = 0;
  for (const GlovebinBlock& block : reader.block_index()) {
    EXPECT_EQ(block.first, next_first);
    EXPECT_GT(block.count, 0u);
    next_first += block.count;
  }
  EXPECT_EQ(next_first, data.size());
  for (std::uint64_t id = 0; id < data.size(); ++id) {
    const GlovebinBlock& b = reader.block_index()[reader.block_of(id)];
    EXPECT_GE(id, b.first);
    EXPECT_LT(id, b.first + b.count);
  }

  // Seek the middle block only: indices line up and io is accounted.
  std::vector<std::uint64_t> seen;
  reader.read_blocks(1, 2, [&](std::uint64_t id, Fingerprint&& fp) {
    seen.push_back(id);
    EXPECT_TRUE(std::ranges::equal(fp.members(), data[id].members()));
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{4, 5, 6, 7}));
  EXPECT_EQ(reader.blocks_read(), 1u);
  EXPECT_GT(reader.bytes_mapped(), 0u);
}

TEST(Glovebin, WriterFailsFastOnUnwritablePath) {
  // An unopenable target fails at construction; an openable-but-unwritable
  // one (full device) no later than begin(), which flushes the header.
  EXPECT_THROW(GlovebinWriter{"/nonexistent-dir/out.glovebin"},
               std::runtime_error);
  if (std::ifstream{"/dev/full"}.good()) {
    GlovebinWriter writer{"/dev/full"};
    EXPECT_THROW(writer.begin("x"), std::runtime_error);
  }
}

TEST(Glovebin, ReaderRejectsMissingAndStructurallyBrokenFiles) {
  test::TempDir dir;
  EXPECT_THROW(GlovebinReader{dir.file("missing.glovebin")},
               std::runtime_error);

  const std::string path = dir.file("data.glovebin");
  write_dataset_glovebin_file(path, test::random_dataset(10, 2));
  const std::string bytes = read_file(path);

  // Truncation loses the trailer.
  const std::string truncated = dir.file("truncated.glovebin");
  write_file(truncated, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(GlovebinReader{truncated}, std::runtime_error);

  // A flipped trailer magic byte means the footer offsets are untrusted.
  const std::string bad_trailer = dir.file("bad_trailer.glovebin");
  std::string flipped = bytes;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x5a);
  write_file(bad_trailer, flipped);
  EXPECT_THROW(GlovebinReader{bad_trailer}, std::runtime_error);

  // A wrong version is a different format generation, not corruption we
  // can parse around.
  const std::string bad_version = dir.file("bad_version.glovebin");
  std::string versioned = bytes;
  versioned[8] = static_cast<char>(kGlovebinVersion + 1);
  write_file(bad_version, versioned);
  EXPECT_THROW(GlovebinReader{bad_version}, std::runtime_error);
}

TEST(Glovebin, ReaderRejectsCorruptBlockPayload) {
  test::TempDir dir;
  std::vector<Fingerprint> fingerprints;
  fingerprints.emplace_back(
      1u, std::vector<Sample>{Sample{SpatialExtent{0.0, 1.0, 0.0, 1.0},
                                     TemporalExtent{0.0, 1.0}, 2u}});
  const FingerprintDataset data{std::move(fingerprints), "tiny"};
  const std::string path = dir.file("corrupt.glovebin");
  write_dataset_glovebin_file(path, data);

  // Zero the sample's contributors count (the last 4 payload bytes of the
  // only record: header 16 B, then member_count + sample_count + one
  // member + six doubles, contributors last).
  std::string bytes = read_file(path);
  const std::size_t contributors_at = 16 + 4 + 4 + 4 + 6 * 8;
  for (std::size_t i = 0; i < 4; ++i) bytes[contributors_at + i] = '\0';
  write_file(path, bytes);

  GlovebinReader reader{path};  // footer is intact, open succeeds
  try {
    (void)read_dataset_glovebin_file(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("corrupt glovebin block 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(Glovebin, FromTimeSortedPreservesSampleOrderAndRejectsEmptyGroups) {
  // Two samples tied on time: a deserializer must not re-sort (std::sort
  // is unstable) or tied samples could swap and break byte-exactness.
  const Sample a{SpatialExtent{0.0, 1.0, 0.0, 1.0}, TemporalExtent{5.0, 1.0},
                 1u};
  const Sample b{SpatialExtent{9.0, 1.0, 9.0, 1.0}, TemporalExtent{5.0, 1.0},
                 1u};
  const Fingerprint fp =
      Fingerprint::from_time_sorted({2u, 1u}, {b, a});  // b first, kept
  ASSERT_EQ(fp.size(), 2u);
  EXPECT_EQ(fp.samples()[0], b);
  EXPECT_EQ(fp.samples()[1], a);
  EXPECT_THROW((void)Fingerprint::from_time_sorted({}, {a}),
               std::invalid_argument);
}

}  // namespace
}  // namespace glove::cdr
