#include "glove/stats/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace glove::stats {
namespace {

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, EndpointsAreMinAndMax) {
  const std::vector<double> v{5.0, -1.0, 3.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, SingletonSample) {
  const std::vector<double> v{4.2};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 4.2);
  EXPECT_DOUBLE_EQ(quantile(v, 0.99), 4.2);
}

TEST(Quantile, RejectsEmptyAndBadP) {
  const std::vector<double> empty;
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.1), std::invalid_argument);
}

TEST(Summarize, BasicStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Summarize, EmptySampleIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(EmpiricalCdf, StepFunctionSemantics) {
  const EmpiricalCdf cdf{std::vector<double>{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdf, WeightsActAsMultiplicity) {
  // {1 (w=3), 2 (w=1)} behaves like {1,1,1,2}.
  const EmpiricalCdf weighted{{1.0, 2.0}, {3.0, 1.0}};
  EXPECT_DOUBLE_EQ(weighted.at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(weighted.at(2.0), 1.0);
  EXPECT_DOUBLE_EQ(weighted.total_weight(), 4.0);
}

TEST(EmpiricalCdf, InverseReturnsSmallestValueReachingP) {
  const EmpiricalCdf cdf{std::vector<double>{10.0, 20.0, 30.0, 40.0}};
  EXPECT_DOUBLE_EQ(cdf.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.26), 20.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 40.0);
}

TEST(EmpiricalCdf, InverseIsCompatibleWithAt) {
  const EmpiricalCdf cdf{std::vector<double>{5.0, 1.0, 9.0, 3.0, 7.0}};
  for (const double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    EXPECT_GE(cdf.at(cdf.inverse(p)), p - 1e-12);
  }
}

TEST(EmpiricalCdf, RejectsBadInput) {
  EXPECT_THROW((EmpiricalCdf{{1.0, 2.0}, {1.0}}), std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{{1.0}, {0.0}}), std::invalid_argument);
  const EmpiricalCdf empty;
  EXPECT_THROW((void)empty.inverse(0.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(empty.at(1.0), 0.0);
}

TEST(EmpiricalCdf, SampleAtEvaluatesGrid) {
  const EmpiricalCdf cdf{std::vector<double>{1.0, 2.0}};
  const auto ys = cdf.sample_at(std::vector<double>{0.0, 1.0, 2.0});
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[1], 0.5);
  EXPECT_DOUBLE_EQ(ys[2], 1.0);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[1], 0.25);
}

TEST(Linspace, DegenerateSizes) {
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

TEST(Logspace, IsGeometric) {
  const auto g = logspace(1.0, 100.0, 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  EXPECT_NEAR(g[1], 10.0, 1e-9);
  EXPECT_NEAR(g[2], 100.0, 1e-12);
}

TEST(Logspace, RejectsNonPositiveEndpoints) {
  EXPECT_THROW((void)logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)logspace(1.0, -1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace glove::stats
