// Tail Weight Index calibration tests: the paper's footnote 5 pins the
// measure at ~1.6 for Exp(1) and ~14 for Pareto(shape 1); a Gaussian must
// score ~1.  We verify against the analytic quantiles of each distribution
// (inverse-CDF sampling on a dense uniform grid).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "glove/stats/stats.hpp"

namespace glove::stats {
namespace {

/// Dense analytic sample of a distribution via its inverse CDF.
template <typename InverseCdf>
std::vector<double> analytic_sample(InverseCdf inv, std::size_t n = 100'000) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    out.push_back(inv(p));
  }
  return out;  // already sorted: inverse CDFs are monotone
}

/// Acklam-style rational approximation of the standard normal quantile;
/// accurate to ~1e-4 over the grid we use, ample for a 2% tolerance test.
double normal_quantile(double p) {
  // Beasley-Springer-Moro.
  static const double a[] = {2.50662823884, -18.61500062529, 41.39119773534,
                             -25.44106049637};
  static const double b[] = {-8.47351093090, 23.08336743743, -21.06224101826,
                             3.13082909833};
  static const double c[] = {0.3374754822726147, 0.9761690190917186,
                             0.1607979714918209, 0.0276438810333863,
                             0.0038405729373609, 0.0003951896511919,
                             0.0000321767881768, 0.0000002888167364,
                             0.0000003960315187};
  const double y = p - 0.5;
  if (std::abs(y) < 0.42) {
    const double r = y * y;
    return y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = p > 0.5 ? 1.0 - p : p;
  r = std::log(-std::log(r));
  double x = c[0];
  double rk = 1.0;
  for (int k = 1; k < 9; ++k) {
    rk *= r;
    x += c[k] * rk;
  }
  return p > 0.5 ? x : -x;
}

TEST(TailWeightIndex, GaussianScoresOne) {
  const auto sample = analytic_sample(normal_quantile);
  EXPECT_NEAR(tail_weight_index_sorted(sample), 1.0, 0.02);
}

TEST(TailWeightIndex, ExponentialScoresOnePointSix) {
  // Exp(1): F^-1(p) = -ln(1-p).  Footnote 5: TWI 1.6.
  const auto sample =
      analytic_sample([](double p) { return -std::log(1.0 - p); });
  EXPECT_NEAR(tail_weight_index_sorted(sample), 1.63, 0.03);
}

TEST(TailWeightIndex, ParetoShapeOneScoresFourteen) {
  // Pareto(x_min=1, shape=1): F^-1(p) = 1/(1-p).  Footnote 5: TWI 14.
  const auto sample =
      analytic_sample([](double p) { return 1.0 / (1.0 - p); });
  EXPECT_NEAR(tail_weight_index_sorted(sample), 14.2, 0.3);
}

TEST(TailWeightIndex, UniformIsLighterThanGaussian) {
  const auto sample = analytic_sample([](double p) { return p; });
  const double twi = tail_weight_index_sorted(sample);
  EXPECT_GT(twi, 0.0);
  EXPECT_LT(twi, 1.0);
}

TEST(TailWeightIndex, HeavierTailScoresHigher) {
  // Pareto with smaller shape has a heavier tail.
  const auto shape2 = analytic_sample(
      [](double p) { return std::pow(1.0 - p, -1.0 / 2.0); });
  const auto shape1 =
      analytic_sample([](double p) { return 1.0 / (1.0 - p); });
  EXPECT_GT(tail_weight_index_sorted(shape1),
            tail_weight_index_sorted(shape2));
}

TEST(TailWeightIndex, ScaleInvariant) {
  const auto sample =
      analytic_sample([](double p) { return -std::log(1.0 - p); });
  std::vector<double> scaled = sample;
  for (double& v : scaled) v *= 1000.0;
  EXPECT_NEAR(tail_weight_index_sorted(sample),
              tail_weight_index_sorted(scaled), 1e-9);
}

TEST(TailWeightIndex, DegenerateSamplesReturnZero) {
  EXPECT_DOUBLE_EQ(tail_weight_index(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(tail_weight_index(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(tail_weight_index(std::vector<double>(100, 3.0)), 0.0);
}

TEST(TailWeightIndex, UnsortedInputHandled) {
  const std::vector<double> unsorted{5.0, 1.0, 3.0, 2.0, 4.0, 100.0,
                                     0.5, 2.5, 3.5, 1.5};
  std::vector<double> sorted = unsorted;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(tail_weight_index(unsorted),
                   tail_weight_index_sorted(sorted));
}

}  // namespace
}  // namespace glove::stats
