// stats::Json — the ordered JSON emitter behind run reports and bench
// manifests: value formatting, escaping, nesting, and order stability.

#include "glove/stats/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace glove::stats {
namespace {

TEST(Json, ScalarsRenderToJsonLiterals) {
  EXPECT_EQ(Json{}.dump(), "null");
  EXPECT_EQ(Json{true}.dump(), "true");
  EXPECT_EQ(Json{false}.dump(), "false");
  EXPECT_EQ(Json{std::int64_t{-5}}.dump(), "-5");
  EXPECT_EQ(Json{std::uint64_t{18'000'000'000'000'000'000ull}}.dump(),
            "18000000000000000000");
  EXPECT_EQ(Json{"text"}.dump(), "\"text\"");
}

TEST(Json, DoublesKeepFloatingPointShape) {
  // Integral doubles keep a ".0" so the schema never flips int <-> float.
  EXPECT_EQ(Json{2.0}.dump(), "2.0");
  EXPECT_EQ(Json{0.5}.dump(), "0.5");
  EXPECT_EQ(Json{1.5e300}.dump(), "1.5e+300");
  // Non-finite doubles have no JSON literal: render null.
  EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
  EXPECT_EQ(Json{std::numeric_limits<double>::quiet_NaN()}.dump(), "null");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", 1).set("alpha", 2).set("mid", Json::array());
  EXPECT_EQ(doc.dump(0), "{\"zebra\": 1,\"alpha\": 2,\"mid\": []}");
}

TEST(Json, SettingAnExistingKeyOverwritesInPlace) {
  Json doc = Json::object();
  doc.set("a", 1).set("b", 2).set("a", 3);
  EXPECT_EQ(doc.dump(0), "{\"a\": 3,\"b\": 2}");
}

TEST(Json, NestedDocumentIndents) {
  Json doc = Json::object();
  doc.set("list", Json::array().push(1).push("two"))
      .set("inner", Json::object().set("k", 2));
  EXPECT_EQ(doc.dump(2),
            "{\n"
            "  \"list\": [\n"
            "    1,\n"
            "    \"two\"\n"
            "  ],\n"
            "  \"inner\": {\n"
            "    \"k\": 2\n"
            "  }\n"
            "}");
}

TEST(Json, TypeMisuseThrows) {
  EXPECT_THROW(Json{1}.set("k", 2), std::logic_error);
  EXPECT_THROW(Json::object().push(1), std::logic_error);
}

}  // namespace
}  // namespace glove::stats
