#include "glove/stats/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace glove::stats {
namespace {

TEST(TextTable, PrintsTitleHeaderAndRows) {
  TextTable table{"My Table"};
  table.header({"col1", "column2"});
  table.row({"a", "b"});
  table.row({"cc", "dd"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("My Table"), std::string::npos);
  EXPECT_NE(text.find("col1"), std::string::npos);
  EXPECT_NE(text.find("cc"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable table{"T"};
  table.header({"x", "y"});
  table.row({"1", "2"});
  table.row({"100", "200"});
  std::ostringstream out;
  table.print(out);
  // Header cell "x" must be padded to the widest cell in its column ("100"),
  // so "x" and "1" start at the same offset as "100".
  std::istringstream lines{out.str()};
  std::string line;
  std::size_t y_column = std::string::npos;
  while (std::getline(lines, line)) {
    if (line.rfind("x", 0) == 0) {
      y_column = line.find('y');
      break;
    }
  }
  ASSERT_NE(y_column, std::string::npos);
  // In the row "100  200", '2' must be at the same column as 'y'.
  lines.clear();
  lines.str(out.str());
  while (std::getline(lines, line)) {
    if (line.rfind("100", 0) == 0) {
      EXPECT_EQ(line.find("200"), y_column);
    }
  }
}

TEST(Fmt, TrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.5, 3), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
}

TEST(Fmt, RoundsToRequestedDigits) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.9999, 2), "2");
}

TEST(Fmt, HandlesNonFinite) {
  EXPECT_EQ(fmt(std::nan(""), 2), "nan");
}

TEST(FmtPct, FormatsFractions) {
  EXPECT_EQ(fmt_pct(0.127, 1), "12.7%");
  EXPECT_EQ(fmt_pct(1.0, 1), "100%");
  EXPECT_EQ(fmt_pct(0.0, 1), "0%");
}

}  // namespace
}  // namespace glove::stats
