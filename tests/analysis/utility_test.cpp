#include "glove/analysis/utility.hpp"

#include <gtest/gtest.h>

#include "glove/core/glove.hpp"
#include "glove/synth/generator.hpp"

namespace glove::analysis {
namespace {

cdr::Sample sample_at(double x, double y, double t, double dt = 1.0,
                      double size = 100.0) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, size, y, size};
  s.tau = cdr::TemporalExtent{t, dt};
  return s;
}

cdr::FingerprintDataset night_home_dataset() {
  // User 0: nights at (0,0), days at (5km, 0).  User 1: nights at (20km, 0).
  std::vector<cdr::Fingerprint> fps;
  std::vector<cdr::Sample> u0;
  std::vector<cdr::Sample> u1;
  for (int d = 0; d < 4; ++d) {
    const double day = d * 1'440.0;
    u0.push_back(sample_at(0, 0, day + 23 * 60));       // 23:00 home
    u0.push_back(sample_at(0, 0, day + 5 * 60));        // 05:00 home
    u0.push_back(sample_at(5'000, 0, day + 12 * 60));   // noon work
    u1.push_back(sample_at(20'000, 0, day + 2 * 60));   // 02:00 home
    u1.push_back(sample_at(21'000, 0, day + 14 * 60));  // 14:00 out
  }
  fps.emplace_back(0u, std::move(u0));
  fps.emplace_back(1u, std::move(u1));
  return cdr::FingerprintDataset{std::move(fps)};
}

TEST(HomeDetection, FindsModalNightTile) {
  const HomeDetection detector{1'000.0};
  const auto homes = detector.detect(night_home_dataset());
  ASSERT_EQ(homes.size(), 2u);
  EXPECT_NEAR(homes.at(0).x_m, 500.0, 1.0);  // centre of tile [0, 1000)
  EXPECT_NEAR(homes.at(1).x_m, 20'500.0, 1.0);
}

TEST(HomeDetection, IgnoresDaytimeOnlyLocations) {
  const HomeDetection detector{1'000.0};
  const auto homes = detector.detect(night_home_dataset());
  // User 0's work tile (5 km) must not win despite equal visit counts.
  EXPECT_LT(homes.at(0).x_m, 2'000.0);
}

TEST(CompareHomes, IdenticalDataPreservesAllHomes) {
  const cdr::FingerprintDataset data = night_home_dataset();
  const HomeUtilityReport report = compare_homes(data, data);
  EXPECT_EQ(report.users_compared, 2u);
  EXPECT_DOUBLE_EQ(report.same_tile_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_displacement_m, 0.0);
}

TEST(CompareHomes, GloveKeepsHomesUsable) {
  // The paper's utility claim (Sec. 2.4): routine-behaviour analyses like
  // home detection survive k-anonymization.
  synth::SynthConfig config = synth::civ_like(60, 55);
  config.days = 4.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const core::GloveResult glove = core::anonymize(data, {});
  const HomeUtilityReport report = compare_homes(data, glove.anonymized);
  EXPECT_GT(report.users_compared, 40u);
  // Homes move, but the median detected home stays within a few km.
  EXPECT_LT(report.median_displacement_m, 5'000.0);
}

TEST(PopulationDensity, NormalizedAndLocalized) {
  const auto density = population_density(night_home_dataset(), 1'000.0);
  double total = 0.0;
  for (const auto& [cell, mass] : density) {
    EXPECT_GE(mass, 0.0);
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PopulationDensity, WideSamplesSpreadMass) {
  std::vector<cdr::Fingerprint> fps;
  // One 2km-wide sample covering two 1km tiles.
  fps.emplace_back(0u, std::vector<cdr::Sample>{
                           sample_at(0, 0, 10, 1.0, 2'000.0)});
  const auto density =
      population_density(cdr::FingerprintDataset{std::move(fps)}, 1'000.0);
  EXPECT_GE(density.size(), 4u);  // 2x2 tiles
  for (const auto& [cell, mass] : density) {
    EXPECT_NEAR(mass, 0.25, 1e-9);
  }
}

TEST(DensityDistance, ZeroForIdenticalOneForDisjoint) {
  const auto a = population_density(night_home_dataset(), 1'000.0);
  EXPECT_NEAR(density_distance(a, a), 0.0, 1e-12);

  std::vector<cdr::Fingerprint> far;
  far.emplace_back(9u, std::vector<cdr::Sample>{
                           sample_at(900'000, 900'000, 0)});
  const auto b =
      population_density(cdr::FingerprintDataset{std::move(far)}, 1'000.0);
  EXPECT_NEAR(density_distance(a, b), 1.0, 1e-12);
}

TEST(DensityDistance, GloveKeepsAggregateDistributionClose) {
  // Aggregate-statistics utility (Sec. 2.4): at the 10 km resolution of
  // land-use / population studies, the anonymized spatial distribution
  // stays close to the original (TV distance far from the disjoint 1.0).
  synth::SynthConfig config = synth::civ_like(60, 56);
  config.days = 4.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const core::GloveResult glove = core::anonymize(data, {});
  const auto before = population_density(data, 10'000.0);
  const auto after = population_density(glove.anonymized, 10'000.0);
  // Loose bound at this tiny (60-user) scale; larger populations score
  // much lower because merge partners share tiles more often.
  EXPECT_LT(density_distance(before, after), 0.45);
}

TEST(HourlyProfile, SumsToOneAndFollowsActivity) {
  const auto profile = hourly_profile(night_home_dataset());
  double total = 0.0;
  for (const double share : profile) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The hand-made dataset has events at 23:00, 05:00, 12:00, 02:00, 14:00.
  EXPECT_GT(profile[12], 0.0);
  EXPECT_DOUBLE_EQ(profile[8], 0.0);
}

TEST(ProfileDistance, BoundsRespected) {
  std::array<double, 24> a{};
  std::array<double, 24> b{};
  a[0] = 1.0;
  b[12] = 1.0;
  EXPECT_DOUBLE_EQ(profile_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(profile_distance(a, b), 1.0);
}

}  // namespace
}  // namespace glove::analysis
