#include "glove/analysis/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "glove/stats/stats.hpp"
#include "glove/synth/generator.hpp"

namespace glove::analysis {
namespace {

cdr::Sample at(double x, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, 0.0, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

TEST(RandomEntropy, Log2OfDistinctTiles) {
  const cdr::Fingerprint fp{0u, {at(0, 0), at(5'000, 10), at(10'000, 20),
                                 at(200, 30)}};  // 3 distinct 1km tiles
  EXPECT_NEAR(random_entropy_bits(fp), std::log2(3.0), 1e-12);
}

TEST(LocationEntropy, UniformVisitsMatchRandomEntropy) {
  const cdr::Fingerprint fp{0u, {at(0, 0), at(5'000, 10), at(10'000, 20)}};
  EXPECT_NEAR(location_entropy_bits(fp), random_entropy_bits(fp), 1e-12);
}

TEST(LocationEntropy, SkewedVisitsLowerEntropy) {
  std::vector<cdr::Sample> samples;
  for (int i = 0; i < 9; ++i) samples.push_back(at(0, i * 10));
  samples.push_back(at(5'000, 100));
  const cdr::Fingerprint fp{0u, std::move(samples)};
  // H(0.9, 0.1) = 0.469 bits < log2(2) = 1.
  EXPECT_NEAR(location_entropy_bits(fp), 0.469, 0.001);
  EXPECT_LT(location_entropy_bits(fp), random_entropy_bits(fp));
}

TEST(Entropy, EmptyFingerprintIsZero) {
  const cdr::Fingerprint fp{0u, {}};
  EXPECT_DOUBLE_EQ(random_entropy_bits(fp), 0.0);
  EXPECT_DOUBLE_EQ(location_entropy_bits(fp), 0.0);
}

TEST(VisitFrequencies, SortedAndNormalized) {
  std::vector<cdr::Sample> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(at(0, i * 10));
  for (int i = 0; i < 3; ++i) samples.push_back(at(5'000, 100 + i * 10));
  samples.push_back(at(10'000, 200));
  const cdr::Fingerprint fp{0u, std::move(samples)};
  const auto freq = visit_frequencies(fp);
  ASSERT_EQ(freq.size(), 3u);
  EXPECT_DOUBLE_EQ(freq[0], 0.6);
  EXPECT_DOUBLE_EQ(freq[1], 0.3);
  EXPECT_DOUBLE_EQ(freq[2], 0.1);
  EXPECT_NEAR(std::accumulate(freq.begin(), freq.end(), 0.0), 1.0, 1e-12);
}

TEST(InterEventTimes, ConsecutiveGaps) {
  const cdr::Fingerprint fp{0u, {at(0, 0), at(0, 30), at(0, 100)}};
  const auto gaps = inter_event_times_min(fp);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 30.0);
  EXPECT_DOUBLE_EQ(gaps[1], 70.0);
}

TEST(SyntheticUsers, ShowCdrRegularity) {
  // The generator must reproduce the regularity signature of real CDR:
  // location entropy well below the random baseline (preferential return)
  // and a dominant home share.
  synth::SynthConfig config = synth::civ_like(60, 91);
  config.days = 7.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  double entropy_gap = 0.0;
  double home_share = 0.0;
  std::size_t counted = 0;
  for (const auto& fp : data.fingerprints()) {
    if (fp.size() < 20) continue;
    entropy_gap += random_entropy_bits(fp) - location_entropy_bits(fp);
    home_share += visit_frequencies(fp).front();
    ++counted;
  }
  ASSERT_GT(counted, 20u);
  EXPECT_GT(entropy_gap / static_cast<double>(counted), 0.3);
  EXPECT_GT(home_share / static_cast<double>(counted), 0.4);
}

TEST(SyntheticUsers, BurstyInterEventTimes) {
  // Real CDR inter-event times are heavy-tailed; the TWI of the gaps must
  // clearly exceed the exponential reference (~1.6) for typical users.
  synth::SynthConfig config = synth::civ_like(40, 92);
  config.days = 7.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  std::vector<double> twis;
  for (const auto& fp : data.fingerprints()) {
    if (fp.size() < 40) continue;
    twis.push_back(stats::tail_weight_index(inter_event_times_min(fp)));
  }
  ASSERT_GT(twis.size(), 10u);
  EXPECT_GT(stats::quantile(twis, 0.5), 1.6);
}

}  // namespace
}  // namespace glove::analysis
