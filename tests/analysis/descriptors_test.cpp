#include "glove/analysis/descriptors.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace glove::analysis {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

TEST(RadiusOfGyration, ZeroForStationaryUser) {
  const cdr::Fingerprint fp{0u, {cell(500, 500, 0), cell(500, 500, 100),
                                 cell(500, 500, 200)}};
  EXPECT_DOUBLE_EQ(radius_of_gyration_m(fp), 0.0);
}

TEST(RadiusOfGyration, HandComputedTwoPoints) {
  // Two points 2 km apart on the x axis: centroid in the middle, each point
  // 1 km away -> r_g = 1000.
  const cdr::Fingerprint fp{0u, {cell(0, 0, 0), cell(2'000, 0, 100)}};
  EXPECT_NEAR(radius_of_gyration_m(fp), 1'000.0, 1e-9);
}

TEST(RadiusOfGyration, EmptyFingerprintIsZero) {
  const cdr::Fingerprint fp{0u, {}};
  EXPECT_DOUBLE_EQ(radius_of_gyration_m(fp), 0.0);
}

TEST(RadiusOfGyration, GrowsWithSpread) {
  const cdr::Fingerprint tight{0u, {cell(0, 0, 0), cell(500, 0, 10)}};
  const cdr::Fingerprint wide{1u, {cell(0, 0, 0), cell(50'000, 0, 10)}};
  EXPECT_GT(radius_of_gyration_m(wide), radius_of_gyration_m(tight));
}

TEST(Describe, CountsAndLengths) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0),
                                                cell(100, 0, 1'440)});
  fps.emplace_back(std::vector<cdr::UserId>{1u, 2u},
                   std::vector<cdr::Sample>{cell(0, 0, 720)});
  const DatasetDescriptor d = describe(cdr::FingerprintDataset{fps});
  EXPECT_EQ(d.fingerprints, 2u);
  EXPECT_EQ(d.users, 3u);
  EXPECT_EQ(d.samples, 3u);
  EXPECT_DOUBLE_EQ(d.mean_fingerprint_length, 1.5);
  EXPECT_DOUBLE_EQ(d.median_fingerprint_length, 1.5);
}

TEST(Describe, TimespanInDays) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0),
                                                cell(0, 0, 2'879)});
  const DatasetDescriptor d = describe(cdr::FingerprintDataset{fps});
  EXPECT_NEAR(d.timespan_days, 2.0, 1e-3);
}

TEST(Describe, EmptyDatasetAllZero) {
  const DatasetDescriptor d = describe({});
  EXPECT_EQ(d.fingerprints, 0u);
  EXPECT_DOUBLE_EQ(d.samples_per_user_per_day, 0.0);
}

TEST(Describe, SamplesPerUserPerDay) {
  std::vector<cdr::Fingerprint> fps;
  // 1 user, 4 samples over 2 days -> 2 samples/user/day.
  fps.emplace_back(0u, std::vector<cdr::Sample>{
                           cell(0, 0, 0), cell(0, 0, 720),
                           cell(0, 0, 1'440), cell(0, 0, 2'879)});
  const DatasetDescriptor d = describe(cdr::FingerprintDataset{fps});
  EXPECT_NEAR(d.samples_per_user_per_day, 2.0, 0.01);
}

}  // namespace
}  // namespace glove::analysis
