#include "glove/analysis/anonymizability.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "glove/synth/generator.hpp"

namespace glove::analysis {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

cdr::FingerprintDataset small_dataset() {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0),
                                                cell(100, 0, 500)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(50, 0, 20),
                                                cell(150, 0, 520)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(5'000, 0, 100),
                                                cell(5'100, 0, 700),
                                                cell(5'200, 0, 900)});
  return cdr::FingerprintDataset{std::move(fps)};
}

TEST(StretchProfiles, OneEntryPerLongerSamplePerNeighbor) {
  const cdr::FingerprintDataset data = small_dataset();
  const auto kgaps = core::k_gaps(data, 2);
  const auto profiles = stretch_profiles(data, kgaps);
  ASSERT_EQ(profiles.size(), 3u);
  // Users 0 and 1 (2 samples each) pair up: tied lengths disaggregate both
  // directions -> 4 entries.  User 2's nearest has fewer samples, so its
  // own 3 samples set the count.
  EXPECT_EQ(profiles[0].total.size(), 4u);
  EXPECT_EQ(profiles[1].total.size(), 4u);
  EXPECT_EQ(profiles[2].total.size(), 3u);
}

TEST(StretchProfiles, ComponentsSumToTotal) {
  const cdr::FingerprintDataset data = small_dataset();
  const auto kgaps = core::k_gaps(data, 3);
  const auto profiles = stretch_profiles(data, kgaps);
  for (const auto& p : profiles) {
    ASSERT_EQ(p.total.size(), p.spatial.size());
    ASSERT_EQ(p.total.size(), p.temporal.size());
    for (std::size_t i = 0; i < p.total.size(); ++i) {
      EXPECT_NEAR(p.total[i], p.spatial[i] + p.temporal[i], 1e-12);
    }
  }
}

TEST(StretchProfiles, MeanEqualsKGap) {
  // The k-gap is the average of the disaggregated per-sample efforts; the
  // disaggregation must be consistent with eq. 10/11.
  const cdr::FingerprintDataset data = small_dataset();
  const auto kgaps = core::k_gaps(data, 2);
  const auto profiles = stretch_profiles(data, kgaps);
  for (std::size_t a = 0; a < data.size(); ++a) {
    const double mean =
        std::accumulate(profiles[a].total.begin(), profiles[a].total.end(),
                        0.0) /
        static_cast<double>(profiles[a].total.size());
    EXPECT_NEAR(mean, kgaps[a].gap, 1e-12);
  }
}

TEST(AnalyzeTails, TemporalShareInUnitInterval) {
  const cdr::FingerprintDataset data = small_dataset();
  const auto kgaps = core::k_gaps(data, 2);
  const auto analysis = analyze_tails(stretch_profiles(data, kgaps));
  ASSERT_EQ(analysis.temporal_share.size(), data.size());
  for (const double share : analysis.temporal_share) {
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
}

TEST(AnalyzeTails, PureTemporalDifferencesGiveShareOne) {
  // Same locations, different times: all stretch is temporal.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(0, 0, 200)});
  const cdr::FingerprintDataset data{std::move(fps)};
  const auto analysis =
      analyze_tails(stretch_profiles(data, core::k_gaps(data, 2)));
  ASSERT_EQ(analysis.temporal_share.size(), 2u);
  EXPECT_DOUBLE_EQ(analysis.temporal_share[0], 1.0);
  EXPECT_DOUBLE_EQ(analysis.temporal_share[1], 1.0);
}

TEST(AnalyzeTails, PureSpatialDifferencesGiveShareZero) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(3'000, 0, 0)});
  const cdr::FingerprintDataset data{std::move(fps)};
  const auto analysis =
      analyze_tails(stretch_profiles(data, core::k_gaps(data, 2)));
  EXPECT_DOUBLE_EQ(analysis.temporal_share[0], 0.0);
}

TEST(AnalyzeTails, SyntheticCdrShowsTemporalDominance) {
  // The paper's core diagnosis (Sec. 5.3): hiding *when* is harder than
  // hiding *where*.  The synthetic CDR must reproduce it: the median
  // temporal share exceeds 1/2.
  synth::SynthConfig config = synth::civ_like(80, 31);
  config.days = 5.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const auto analysis =
      analyze_tails(stretch_profiles(data, core::k_gaps(data, 2)));
  std::vector<double> shares = analysis.temporal_share;
  std::sort(shares.begin(), shares.end());
  const double median_share = shares[shares.size() / 2];
  EXPECT_GT(median_share, 0.5);
}

TEST(AnalyzeTails, SkipsEmptyProfiles) {
  std::vector<UserStretchProfile> profiles(3);
  profiles[1].total = {0.1, 0.2};
  profiles[1].spatial = {0.05, 0.1};
  profiles[1].temporal = {0.05, 0.1};
  const auto analysis = analyze_tails(profiles);
  EXPECT_EQ(analysis.twi_total.size(), 1u);
  EXPECT_EQ(analysis.temporal_share.size(), 1u);
}

}  // namespace
}  // namespace glove::analysis
