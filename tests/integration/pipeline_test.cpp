// End-to-end pipeline tests: synthetic CDR -> fingerprints -> analysis ->
// GLOVE -> published dataset -> file round trip, exercising the same flow
// as the paper's evaluation (and the examples).

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "glove/analysis/anonymizability.hpp"
#include "glove/analysis/descriptors.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/generalize.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/synth/generator.hpp"

namespace glove {
namespace {

cdr::FingerprintDataset make_data(std::size_t users = 60,
                                  std::uint64_t seed = 77) {
  synth::SynthConfig config = synth::civ_like(users, seed);
  config.days = 3.0;
  return synth::generate_dataset(config);
}

TEST(Pipeline, RawDatasetHasNoAnonymousUser) {
  // Fig. 3a's headline: no user is 2-anonymous in the original data.
  const cdr::FingerprintDataset data = make_data();
  const auto gaps = core::k_gap_values(data, 2);
  std::size_t anonymous = 0;
  for (const double g : gaps) {
    if (g == 0.0) ++anonymous;
  }
  // Synthetic CDR reproduces high uniqueness: essentially nobody at gap 0.
  EXPECT_LE(anonymous, gaps.size() / 50);
}

TEST(Pipeline, UniformGeneralizationFailsWhereGloveSucceeds) {
  // Fig. 4 vs Fig. 7: even coarse tiles leave most users unique, while
  // GLOVE anonymizes everyone by construction.
  const cdr::FingerprintDataset data = make_data();
  const auto coarse =
      core::generalize_dataset(data, {5'000.0, 120.0});
  const auto gaps = core::k_gap_values(coarse, 2);
  std::size_t still_unique = 0;
  for (const double g : gaps) {
    if (g > 0.0) ++still_unique;
  }
  EXPECT_GT(still_unique, gaps.size() / 2);

  const core::GloveResult glove = core::anonymize(data, {});
  EXPECT_TRUE(core::is_k_anonymous(glove.anonymized, 2));
}

TEST(Pipeline, GloveAccuracyBeatsUniformGeneralizationAtSamePrivacy) {
  // The paper's central utility claim: at full 2-anonymity, GLOVE's samples
  // stay far more accurate than the 20 km / 8 h tiles legacy generalization
  // would need (and which still fails to anonymize).
  const cdr::FingerprintDataset data = make_data();
  const core::GloveResult glove = core::anonymize(data, {});
  const auto obs = core::measure_accuracy(glove.anonymized);
  const auto summary = core::summarize_accuracy(obs);
  EXPECT_LT(summary.median_position_m, 20'000.0);
  EXPECT_LT(summary.median_time_min, 480.0);
}

TEST(Pipeline, AnonymizedDatasetSurvivesFileRoundTrip) {
  const cdr::FingerprintDataset data = make_data(40);
  const core::GloveResult glove = core::anonymize(data, {});

  std::ostringstream out;
  cdr::write_dataset_csv(out, glove.anonymized);
  std::istringstream in{out.str()};
  const cdr::FingerprintDataset back = cdr::read_dataset_csv(in);

  ASSERT_EQ(back.size(), glove.anonymized.size());
  EXPECT_EQ(back.total_users(), glove.anonymized.total_users());
  EXPECT_EQ(back.total_samples(), glove.anonymized.total_samples());
  EXPECT_TRUE(core::is_k_anonymous(back, 2));
}

TEST(Pipeline, EventsToFingerprintsToLatLonRoundTrip) {
  synth::SynthConfig config = synth::civ_like(20, 3);
  config.days = 2.0;
  const auto planar = synth::generate_events(config);
  const auto geo_events = synth::to_latlon_events(planar, config);

  // Feed the lat/lon CDR through the geographic builder, as a data-owner
  // integrating real traces would.
  cdr::BuilderConfig builder;
  builder.projection_origin = config.region_anchor;
  const cdr::FingerprintDataset data =
      cdr::build_fingerprints(geo_events, builder);
  EXPECT_EQ(data.size(), 20u);
  EXPECT_GT(data.total_samples(), 0u);
}

TEST(Pipeline, AnalysisRunsOnAnonymizedOutput) {
  // The anonymizability toolkit must accept generalized (merged) samples:
  // k-gap of a GLOVE output is ~0 for the merged groups' fingerprints.
  const cdr::FingerprintDataset data = make_data(40);
  const core::GloveResult glove = core::anonymize(data, {});
  const auto descriptor = analysis::describe(glove.anonymized);
  EXPECT_EQ(descriptor.users, data.total_users());
  EXPECT_LE(descriptor.fingerprints, data.size() / 2);
}

TEST(Pipeline, ScreeningFilterMatchesPaperSetup) {
  // Sec. 3: d4d-civ screening keeps users with >= 1 sample/day.
  synth::SynthConfig config = synth::civ_like(50, 9);
  config.days = 3.0;
  config.activity.min_events_per_day = 0.0;        // disable the floor
  config.activity.median_events_per_day = 1.2;     // many low-activity users
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const cdr::FingerprintDataset screened =
      cdr::filter_min_activity(data, 1.0, config.days);
  EXPECT_LT(screened.size(), data.size());
  for (const auto& fp : screened.fingerprints()) {
    EXPECT_GE(static_cast<double>(fp.size()) / config.days, 1.0);
  }
}

TEST(Pipeline, TimespanCutsNestMonotonically) {
  // Fig. 10 mechanics: a 1-day cut is a subset of the 2-day cut, etc.
  const cdr::FingerprintDataset data = make_data(30);
  const auto one_day = cdr::cut_time_window(data, 0.0, 1'440.0);
  const auto two_days = cdr::cut_time_window(data, 0.0, 2 * 1'440.0);
  EXPECT_LE(one_day.total_samples(), two_days.total_samples());
  EXPECT_LE(one_day.size(), two_days.size());
}

}  // namespace
}  // namespace glove
