// Configuration-matrix sweep: GLOVE's postconditions must hold across the
// full cross-product of anonymity level, reshaping, suppression and
// leftover policy — the combinations a deployment can actually configure.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>

#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/synth/generator.hpp"

namespace glove {
namespace {

struct MatrixParam {
  std::uint32_t k;
  bool reshape;
  bool suppress;
  core::LeftoverPolicy leftover;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string name = "k";
  name += std::to_string(p.k);
  name += p.reshape ? "_reshape" : "_noreshape";
  name += p.suppress ? "_suppress" : "_nosuppress";
  name += p.leftover == core::LeftoverPolicy::kMergeIntoNearest ? "_merge"
                                                                : "_drop";
  return name;
}

class GloveConfigMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static const cdr::FingerprintDataset& dataset() {
    static const cdr::FingerprintDataset data = [] {
      synth::SynthConfig config = synth::civ_like(45, 83);
      config.days = 3.0;
      return synth::generate_dataset(config);
    }();
    return data;
  }
};

TEST_P(GloveConfigMatrix, PostconditionsHold) {
  const MatrixParam& param = GetParam();
  core::GloveConfig config;
  config.k = param.k;
  config.reshape = param.reshape;
  config.leftover_policy = param.leftover;
  if (param.suppress) {
    config.suppression = core::SuppressionThresholds{15'000.0, 360.0};
  }
  const cdr::FingerprintDataset& data = dataset();
  ASSERT_GE(data.size(), 2 * param.k);
  const core::GloveResult result = core::anonymize(data, config);

  // 1. k-anonymity.
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, param.k));

  // 2. User conservation (exact under merge policy; bounded under drop).
  std::set<cdr::UserId> users;
  for (const auto& fp : result.anonymized.fingerprints()) {
    users.insert(fp.members().begin(), fp.members().end());
  }
  if (param.leftover == core::LeftoverPolicy::kMergeIntoNearest) {
    EXPECT_EQ(users.size(), data.size());
  } else {
    EXPECT_GE(users.size() + (param.k - 1), data.size());
    EXPECT_EQ(users.size() + result.stats.discarded_fingerprints,
              data.size());
  }

  // 3. Suppression bounds every published extent.
  if (param.suppress) {
    for (const auto& fp : result.anonymized.fingerprints()) {
      for (const auto& s : fp.samples()) {
        EXPECT_LE(s.sigma.accuracy_m(), 15'000.0 + 1e-9);
        EXPECT_LE(s.tau.dt, 360.0 + 1e-9);
      }
    }
  } else if (param.leftover == core::LeftoverPolicy::kMergeIntoNearest) {
    // 4. Without suppression, truthfulness: every original sample covered.
    EXPECT_EQ(core::count_uncovered_samples(data, result.anonymized), 0u);
    EXPECT_EQ(result.stats.deleted_samples, 0u);
  }

  // 5. Reshaping leaves no temporal overlap.
  if (param.reshape) {
    for (const auto& fp : result.anonymized.fingerprints()) {
      for (std::size_t i = 1; i < fp.size(); ++i) {
        EXPECT_FALSE(
            cdr::time_overlaps(fp.samples()[i - 1], fp.samples()[i]));
      }
    }
  }

  // 6. Contributor accounting: published + deleted = input samples.
  std::uint64_t published = 0;
  for (const auto& fp : result.anonymized.fingerprints()) {
    published += fp.total_contributors();
  }
  EXPECT_EQ(published + result.stats.deleted_samples, data.total_samples());
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GloveConfigMatrix,
    ::testing::ValuesIn([] {
      std::vector<MatrixParam> params;
      for (const std::uint32_t k : {2u, 3u, 5u}) {
        for (const bool reshape : {true, false}) {
          for (const bool suppress : {true, false}) {
            for (const auto leftover :
                 {core::LeftoverPolicy::kMergeIntoNearest,
                  core::LeftoverPolicy::kSuppress}) {
              params.push_back(MatrixParam{k, reshape, suppress, leftover});
            }
          }
        }
      }
      return params;
    }()),
    param_name);

}  // namespace
}  // namespace glove
