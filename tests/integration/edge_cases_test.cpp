// Edge cases and failure injection across modules: degenerate datasets,
// extreme configurations, malformed input files, and robustness of the
// pipeline against inputs a production deployment would eventually see.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/fixtures.hpp"
#include "glove/baseline/w4m.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/core/merge.hpp"
#include "glove/synth/generator.hpp"

namespace glove {
namespace {

using test::cell;

TEST(EdgeCases, AllIdenticalFingerprintsMergeForFree) {
  std::vector<cdr::Fingerprint> fps;
  const std::vector<cdr::Sample> samples{cell(0, 0, 10), cell(500, 0, 700)};
  for (cdr::UserId u = 0; u < 8; ++u) fps.emplace_back(u, samples);
  const cdr::FingerprintDataset data{std::move(fps)};

  // k-gap is zero everywhere...
  for (const double g : core::k_gap_values(data, 4)) {
    EXPECT_DOUBLE_EQ(g, 0.0);
  }
  // ...and GLOVE preserves the exact geometry.
  const core::GloveResult result = core::anonymize(data, {});
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));
  for (const auto& fp : result.anonymized.fingerprints()) {
    ASSERT_EQ(fp.size(), 2u);
    EXPECT_DOUBLE_EQ(fp.samples()[0].sigma.dx, 100.0);
    EXPECT_DOUBLE_EQ(fp.samples()[0].tau.dt, 1.0);
  }
}

TEST(EdgeCases, SingleSampleFingerprints) {
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 6; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            cell(u * 150.0, 0, u * 20.0)});
  }
  const core::GloveResult result =
      core::anonymize(cdr::FingerprintDataset{std::move(fps)}, {});
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));
  for (const auto& fp : result.anonymized.fingerprints()) {
    EXPECT_EQ(fp.size(), 1u);  // merging singletons yields singletons
  }
}

TEST(EdgeCases, KEqualsDatasetSize) {
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 5; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{cell(u * 100.0, 0, u * 5.0)});
  }
  core::GloveConfig config;
  config.k = 5;
  const core::GloveResult result =
      core::anonymize(cdr::FingerprintDataset{std::move(fps)}, config);
  ASSERT_EQ(result.anonymized.size(), 1u);
  EXPECT_EQ(result.anonymized[0].group_size(), 5u);
}

TEST(EdgeCases, PreGroupedInputIsRespected) {
  // Re-anonymizing a dataset that already contains k-sized groups: they
  // are final and must pass through unchanged.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(std::vector<cdr::UserId>{0u, 1u},
                   std::vector<cdr::Sample>{cell(0, 0, 10)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(100, 0, 20)});
  fps.emplace_back(3u, std::vector<cdr::Sample>{cell(200, 0, 30)});
  const core::GloveResult result =
      core::anonymize(cdr::FingerprintDataset{std::move(fps)}, {});
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));
  // The pre-grouped pair survives as its own group.
  bool found_pair = false;
  for (const auto& fp : result.anonymized.fingerprints()) {
    if (fp.group_size() == 2 && fp.members()[0] <= 1u) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
}

TEST(EdgeCases, ZeroWidthSuppressionDeletesEverything) {
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 4; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            cell(u * 5'000.0, 0, u * 300.0)});
  }
  core::GloveConfig config;
  config.suppression = core::SuppressionThresholds{50.0, 0.5};  // < original
  const core::GloveResult result =
      core::anonymize(cdr::FingerprintDataset{std::move(fps)}, config);
  // All merged samples exceed the impossible thresholds.
  EXPECT_EQ(result.anonymized.total_samples(), 0u);
  EXPECT_EQ(result.stats.deleted_samples, 4u);
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));
}

TEST(EdgeCases, SamplesAtExtremeCoordinates) {
  // Values near the numeric edges must not overflow the stretch math.
  cdr::Sample far_east = cell(1e12, 1e12, 1e9);
  cdr::Sample origin = cell(0, 0, 0);
  const core::SampleStretch d =
      core::sample_stretch(origin, 1, far_east, 1, {});
  EXPECT_DOUBLE_EQ(d.total(), 1.0);  // saturated, not inf/nan
  const cdr::Sample m = core::merge_samples(origin, far_east);
  EXPECT_TRUE(std::isfinite(m.sigma.dx));
  EXPECT_TRUE(std::isfinite(m.tau.dt));
}

TEST(EdgeCases, W4MWithKEqualUsers) {
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 3; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{cell(u * 100.0, 0, 10),
                                                 cell(u * 100.0, 0, 500)});
  }
  baseline::W4MConfig config;
  config.k = 3;
  const baseline::W4MResult result =
      baseline::anonymize_w4m(cdr::FingerprintDataset{std::move(fps)},
                              config);
  ASSERT_EQ(result.anonymized.size(), 1u);
  EXPECT_EQ(result.anonymized[0].group_size(), 3u);
}

TEST(EdgeCases, DatasetCsvWithOnlyComments) {
  std::istringstream in{"# empty trace\n# nothing here\n"};
  const cdr::FingerprintDataset data = cdr::read_dataset_csv(in);
  EXPECT_TRUE(data.empty());
}

TEST(EdgeCases, CdrCsvRejectsPartialRows) {
  for (const char* bad : {"1,2\n", "1,2,3,4,5\n", "1,,3,4\n"}) {
    std::istringstream in{bad};
    EXPECT_THROW((void)cdr::read_cdr_csv(in), std::invalid_argument)
        << "input: " << bad;
  }
}

TEST(EdgeCases, GeneratorWithOneUser) {
  synth::SynthConfig config = synth::civ_like(1, 3);
  config.days = 2.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  EXPECT_LE(data.size(), 1u);  // may be 0 if the user drew silent days
}

TEST(EdgeCases, KGapOnGloveOutputIsZero) {
  // Published groups are k-anonymous: identical fingerprints mean another
  // group at stretch zero is not required — but each group's *own* k-gap
  // relative to the published dataset reflects only inter-group distances.
  synth::SynthConfig config = synth::civ_like(30, 57);
  config.days = 2.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const core::GloveResult result = core::anonymize(data, {});
  // The expanded view (one record per user) has k duplicate records per
  // group, so every record's 2-gap is exactly zero.
  std::vector<cdr::Fingerprint> expanded;
  for (const auto& fp : result.anonymized.fingerprints()) {
    for (const cdr::UserId user : fp.members()) {
      expanded.emplace_back(user,
                            std::vector<cdr::Sample>{fp.samples().begin(),
                                                     fp.samples().end()});
    }
  }
  const auto gaps =
      core::k_gap_values(cdr::FingerprintDataset{std::move(expanded)}, 2);
  for (const double g : gaps) {
    EXPECT_DOUBLE_EQ(g, 0.0);
  }
}

}  // namespace
}  // namespace glove
