// Compile-level test: the umbrella header must pull in the whole public
// API without conflicts, and the headline types must be usable together.

#include "glove/glove.hpp"

#include <gtest/gtest.h>

namespace glove {
namespace {

TEST(UmbrellaHeader, PublicApiIsUsableTogether) {
  synth::SynthConfig config = synth::civ_like(12, 1);
  config.days = 1.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  if (data.size() < 4) GTEST_SKIP() << "tiny dataset drew silent users";

  const auto gaps = core::k_gap_values(data, 2);
  EXPECT_EQ(gaps.size(), data.size());

  const core::GloveResult result = core::anonymize(data, {});
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));

  const analysis::DatasetDescriptor d = analysis::describe(result.anonymized);
  EXPECT_EQ(d.users, data.total_users());
}

}  // namespace
}  // namespace glove
