// Golden-value regression tests: lock the numerics of the core metrics on
// fixed inputs so future refactors cannot silently change the semantics of
// eq. 1-13.  Values were hand-derived (see comments) — they are contracts,
// not snapshots.

#include <gtest/gtest.h>

#include <sstream>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/core/merge.hpp"
#include "glove/core/stretch.hpp"

namespace glove {
namespace {

using test::box;

TEST(Golden, SampleStretchMixedGeometry) {
  // a = [0,100]x[0,100] @ [0,1]; b = [400,600]x[250,300] @ [45,75].
  // Spatial, a->b: l = 0, r = (600-100)+(300-100) = 700.
  // Spatial, b->a: l = 400+250 = 650, r = 0.  Weighted 1:1 -> 675.
  // Temporal, a->b: l = 0, r = 75-1 = 74; b->a: l = 45, r = 0 -> 59.5.
  // delta = 0.5*675/20000 + 0.5*59.5/480.
  const cdr::Sample a = box(0, 100, 0, 100, 0, 1);
  const cdr::Sample b = box(400, 200, 250, 50, 45, 30);
  const core::SampleStretch d = core::sample_stretch(a, 1, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 675.0 / 20'000.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5 * 59.5 / 480.0);
}

TEST(Golden, WeightedSampleStretch) {
  // Same geometry, a carries a group of 3: weights 3/4 and 1/4.
  // Spatial: 700*(3/4) + 650*(1/4) = 687.5.
  // Temporal: 74*(3/4) + 45*(1/4) = 66.75.
  const cdr::Sample a = box(0, 100, 0, 100, 0, 1);
  const cdr::Sample b = box(400, 200, 250, 50, 45, 30);
  const core::SampleStretch d = core::sample_stretch(a, 3, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 687.5 / 20'000.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5 * 66.75 / 480.0);
}

TEST(Golden, FingerprintStretchThreeByTwo) {
  // a: 3 samples, b: 2 samples; iterate over a (longer).
  //   a1 = cell(0,0)@0    -> best match b1 = cell(0,0)@10:    temporal 10
  //   a2 = cell(1000,0)@500 -> b2 = cell(1200,0)@520: spatial 200, temp 20
  //   a3 = cell(0,0)@900  -> b1: temporal 890 (>480 saturates to 1) vs
  //        b2 spatial 1200 temporal 380: delta(b2) = 0.5*1200/20000 +
  //        0.5*380/480 = 0.03 + 0.3958.. = 0.4258.. < delta(b1) = 0.5*0 +
  //        0.5*1 = 0.5 -> picks b2.
  const cdr::Fingerprint a{0u, {box(0, 100, 0, 100, 0, 1),
                                box(1'000, 100, 0, 100, 500, 1),
                                box(0, 100, 0, 100, 900, 1)}};
  const cdr::Fingerprint b{1u, {box(0, 100, 0, 100, 10, 1),
                                box(1'200, 100, 0, 100, 520, 1)}};
  const double d1 = 0.5 * 10.0 / 480.0;
  const double d2 = 0.5 * 200.0 / 20'000.0 + 0.5 * 20.0 / 480.0;
  const double d3 = 0.5 * 1'200.0 / 20'000.0 + 0.5 * 380.0 / 480.0;
  EXPECT_DOUBLE_EQ(core::fingerprint_stretch(a, b, {}),
                   (d1 + d2 + d3) / 3.0);
}

TEST(Golden, MergeProducesExactUnion) {
  const cdr::Sample a = box(0, 100, 0, 100, 0, 1);
  const cdr::Sample b = box(400, 200, 250, 50, 45, 30);
  const cdr::Sample m = core::merge_samples(a, b);
  EXPECT_DOUBLE_EQ(m.sigma.x, 0.0);
  EXPECT_DOUBLE_EQ(m.sigma.dx, 600.0);
  EXPECT_DOUBLE_EQ(m.sigma.y, 0.0);
  EXPECT_DOUBLE_EQ(m.sigma.dy, 300.0);
  EXPECT_DOUBLE_EQ(m.tau.t, 0.0);
  EXPECT_DOUBLE_EQ(m.tau.dt, 75.0);
}

TEST(Golden, GloveOnFixedFourUsers) {
  // Two natural pairs; GLOVE must find exactly them and produce the exact
  // unions.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{box(0, 100, 0, 100, 0, 1)});
  fps.emplace_back(1u,
                   std::vector<cdr::Sample>{box(200, 100, 0, 100, 5, 1)});
  fps.emplace_back(
      2u, std::vector<cdr::Sample>{box(9'000, 100, 0, 100, 700, 1)});
  fps.emplace_back(
      3u, std::vector<cdr::Sample>{box(9'300, 100, 0, 100, 710, 1)});
  const core::GloveResult result =
      core::anonymize(cdr::FingerprintDataset{std::move(fps)}, {});
  ASSERT_EQ(result.anonymized.size(), 2u);
  // Group {0,1}: union = [0,300]x[0,100] @ [0,6].
  // Group {2,3}: union = [9000,9400]x[0,100] @ [700,711].
  for (const auto& fp : result.anonymized.fingerprints()) {
    ASSERT_EQ(fp.size(), 1u);
    const cdr::Sample& s = fp.samples()[0];
    if (fp.representative() == 0u) {
      EXPECT_DOUBLE_EQ(s.sigma.dx, 300.0);
      EXPECT_DOUBLE_EQ(s.tau.t, 0.0);
      EXPECT_DOUBLE_EQ(s.tau.dt, 6.0);
    } else {
      EXPECT_DOUBLE_EQ(s.sigma.x, 9'000.0);
      EXPECT_DOUBLE_EQ(s.sigma.dx, 400.0);
      EXPECT_DOUBLE_EQ(s.tau.dt, 11.0);
    }
  }
}

TEST(Golden, DatasetCsvRoundTripIsExactOnRandomData) {
  // Property: write -> read is the identity on structure and values.
  const cdr::FingerprintDataset data = test::random_dataset(15, /*seed=*/404);

  std::istringstream in{test::dataset_to_csv(data)};
  const cdr::FingerprintDataset back = cdr::read_dataset_csv(in);
  test::expect_datasets_near(back, data);
}

TEST(Golden, AnonymizedPairedDatasetMatchesGoldenFile) {
  // End-to-end regression: the full GLOVE output on the shared paired
  // dataset, serialized to CSV, against a checked-in reference.  Catches
  // any semantic drift in the merge order, union geometry or serializer.
  const core::GloveResult result =
      core::anonymize(test::paired_dataset(), {});
  test::expect_matches_golden("glove_paired_k2.csv",
                              test::dataset_to_csv(result.anonymized));
}

}  // namespace
}  // namespace glove
