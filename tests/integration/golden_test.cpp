// Golden-value regression tests: lock the numerics of the core metrics on
// fixed inputs so future refactors cannot silently change the semantics of
// eq. 1-13.  Values were hand-derived (see comments) — they are contracts,
// not snapshots.

#include <gtest/gtest.h>

#include <sstream>

#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/kgap.hpp"
#include "glove/core/merge.hpp"
#include "glove/core/stretch.hpp"
#include "glove/util/rng.hpp"

namespace glove {
namespace {

cdr::Sample make(double x, double dx, double y, double dy, double t,
                 double dt) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, dx, y, dy};
  s.tau = cdr::TemporalExtent{t, dt};
  return s;
}

TEST(Golden, SampleStretchMixedGeometry) {
  // a = [0,100]x[0,100] @ [0,1]; b = [400,600]x[250,300] @ [45,75].
  // Spatial, a->b: l = 0, r = (600-100)+(300-100) = 700.
  // Spatial, b->a: l = 400+250 = 650, r = 0.  Weighted 1:1 -> 675.
  // Temporal, a->b: l = 0, r = 75-1 = 74; b->a: l = 45, r = 0 -> 59.5.
  // delta = 0.5*675/20000 + 0.5*59.5/480.
  const cdr::Sample a = make(0, 100, 0, 100, 0, 1);
  const cdr::Sample b = make(400, 200, 250, 50, 45, 30);
  const core::SampleStretch d = core::sample_stretch(a, 1, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 675.0 / 20'000.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5 * 59.5 / 480.0);
}

TEST(Golden, WeightedSampleStretch) {
  // Same geometry, a carries a group of 3: weights 3/4 and 1/4.
  // Spatial: 700*(3/4) + 650*(1/4) = 687.5.
  // Temporal: 74*(3/4) + 45*(1/4) = 66.75.
  const cdr::Sample a = make(0, 100, 0, 100, 0, 1);
  const cdr::Sample b = make(400, 200, 250, 50, 45, 30);
  const core::SampleStretch d = core::sample_stretch(a, 3, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 687.5 / 20'000.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5 * 66.75 / 480.0);
}

TEST(Golden, FingerprintStretchThreeByTwo) {
  // a: 3 samples, b: 2 samples; iterate over a (longer).
  //   a1 = cell(0,0)@0    -> best match b1 = cell(0,0)@10:    temporal 10
  //   a2 = cell(1000,0)@500 -> b2 = cell(1200,0)@520: spatial 200, temp 20
  //   a3 = cell(0,0)@900  -> b1: temporal 890 (>480 saturates to 1) vs
  //        b2 spatial 1200 temporal 380: delta(b2) = 0.5*1200/20000 +
  //        0.5*380/480 = 0.03 + 0.3958.. = 0.4258.. < delta(b1) = 0.5*0 +
  //        0.5*1 = 0.5 -> picks b2.
  const cdr::Fingerprint a{0u, {make(0, 100, 0, 100, 0, 1),
                                make(1'000, 100, 0, 100, 500, 1),
                                make(0, 100, 0, 100, 900, 1)}};
  const cdr::Fingerprint b{1u, {make(0, 100, 0, 100, 10, 1),
                                make(1'200, 100, 0, 100, 520, 1)}};
  const double d1 = 0.5 * 10.0 / 480.0;
  const double d2 = 0.5 * 200.0 / 20'000.0 + 0.5 * 20.0 / 480.0;
  const double d3 = 0.5 * 1'200.0 / 20'000.0 + 0.5 * 380.0 / 480.0;
  EXPECT_DOUBLE_EQ(core::fingerprint_stretch(a, b, {}),
                   (d1 + d2 + d3) / 3.0);
}

TEST(Golden, MergeProducesExactUnion) {
  const cdr::Sample a = make(0, 100, 0, 100, 0, 1);
  const cdr::Sample b = make(400, 200, 250, 50, 45, 30);
  const cdr::Sample m = core::merge_samples(a, b);
  EXPECT_DOUBLE_EQ(m.sigma.x, 0.0);
  EXPECT_DOUBLE_EQ(m.sigma.dx, 600.0);
  EXPECT_DOUBLE_EQ(m.sigma.y, 0.0);
  EXPECT_DOUBLE_EQ(m.sigma.dy, 300.0);
  EXPECT_DOUBLE_EQ(m.tau.t, 0.0);
  EXPECT_DOUBLE_EQ(m.tau.dt, 75.0);
}

TEST(Golden, GloveOnFixedFourUsers) {
  // Two natural pairs; GLOVE must find exactly them and produce the exact
  // unions.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{make(0, 100, 0, 100, 0, 1)});
  fps.emplace_back(1u,
                   std::vector<cdr::Sample>{make(200, 100, 0, 100, 5, 1)});
  fps.emplace_back(
      2u, std::vector<cdr::Sample>{make(9'000, 100, 0, 100, 700, 1)});
  fps.emplace_back(
      3u, std::vector<cdr::Sample>{make(9'300, 100, 0, 100, 710, 1)});
  const core::GloveResult result =
      core::anonymize(cdr::FingerprintDataset{std::move(fps)}, {});
  ASSERT_EQ(result.anonymized.size(), 2u);
  // Group {0,1}: union = [0,300]x[0,100] @ [0,6].
  // Group {2,3}: union = [9000,9400]x[0,100] @ [700,711].
  for (const auto& fp : result.anonymized.fingerprints()) {
    ASSERT_EQ(fp.size(), 1u);
    const cdr::Sample& s = fp.samples()[0];
    if (fp.representative() == 0u) {
      EXPECT_DOUBLE_EQ(s.sigma.dx, 300.0);
      EXPECT_DOUBLE_EQ(s.tau.t, 0.0);
      EXPECT_DOUBLE_EQ(s.tau.dt, 6.0);
    } else {
      EXPECT_DOUBLE_EQ(s.sigma.x, 9'000.0);
      EXPECT_DOUBLE_EQ(s.sigma.dx, 400.0);
      EXPECT_DOUBLE_EQ(s.tau.dt, 11.0);
    }
  }
}

TEST(Golden, DatasetCsvRoundTripIsExactOnRandomData) {
  // Property: write -> read is the identity on structure and values.
  util::Xoshiro256 rng{404};
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 15; ++u) {
    std::vector<cdr::Sample> samples;
    const std::size_t n = 1 + util::uniform_index(rng, 6);
    for (std::size_t i = 0; i < n; ++i) {
      cdr::Sample s;
      s.sigma = cdr::SpatialExtent{util::uniform(rng, -1e5, 1e5),
                                   util::uniform(rng, 1.0, 5e4),
                                   util::uniform(rng, -1e5, 1e5),
                                   util::uniform(rng, 1.0, 5e4)};
      s.tau = cdr::TemporalExtent{util::uniform(rng, 0.0, 2e4),
                                  util::uniform(rng, 1.0, 500.0)};
      s.contributors =
          1 + static_cast<std::uint32_t>(util::uniform_index(rng, 9));
      samples.push_back(s);
    }
    fps.emplace_back(u, std::move(samples));
  }
  const cdr::FingerprintDataset data{std::move(fps), "roundtrip"};

  std::ostringstream out;
  cdr::write_dataset_csv(out, data);
  std::istringstream in{out.str()};
  const cdr::FingerprintDataset back = cdr::read_dataset_csv(in);

  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(back[i].size(), data[i].size());
    EXPECT_TRUE(std::equal(back[i].members().begin(),
                           back[i].members().end(),
                           data[i].members().begin()));
    for (std::size_t j = 0; j < data[i].size(); ++j) {
      const cdr::Sample& original = data[i].samples()[j];
      const cdr::Sample& restored = back[i].samples()[j];
      EXPECT_NEAR(restored.sigma.x, original.sigma.x, 1e-4);
      EXPECT_NEAR(restored.sigma.dx, original.sigma.dx, 1e-4);
      EXPECT_NEAR(restored.tau.t, original.tau.t, 1e-4);
      EXPECT_NEAR(restored.tau.dt, original.tau.dt, 1e-4);
      EXPECT_EQ(restored.contributors, original.contributors);
    }
  }
}

}  // namespace
}  // namespace glove
