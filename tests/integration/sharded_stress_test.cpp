// Large-population stress pass for --strategy=sharded, run by the weekly
// scheduled CI job (Release and TSan) and skipped in normal ctest runs.
//
// Environment knobs:
//   GLOVE_STRESS=1            enable the suite (skipped otherwise)
//   GLOVE_STRESS_USERS        population of the sharded-only pass
//                             (default 100000)
//   GLOVE_SPEEDUP_USERS       population of the sharded-vs-full wall-clock
//                             comparison (default 2000; the full O(|M|^2)
//                             run bounds how large this can be)
//   GLOVE_THREADS             shared-pool workers (also the shard
//                             scheduler default)

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "glove/api/engine.hpp"
#include "glove/core/glove.hpp"
#include "glove/synth/generator.hpp"
#include "glove/util/flags.hpp"

namespace glove {
namespace {

bool stress_enabled() {
  const char* flag = std::getenv("GLOVE_STRESS");
  return flag != nullptr && *flag != '\0' && *flag != '0';
}

cdr::FingerprintDataset stress_population(std::size_t users) {
  synth::SynthConfig config = synth::civ_like(users, /*seed=*/29);
  config.days = 3.0;
  return synth::generate_dataset(config);
}

double run_seconds(const Engine& engine, const cdr::FingerprintDataset& data,
                   const api::RunConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = engine.run(data, config);
  EXPECT_TRUE(result.ok()) << config.strategy << ": "
                           << (result.ok() ? "" : result.error().message);
  EXPECT_TRUE(core::is_k_anonymous(result.value().anonymized, config.k))
      << config.strategy;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(ShardedStress, LargePopulationEndToEnd) {
  if (!stress_enabled()) {
    GTEST_SKIP() << "set GLOVE_STRESS=1 to run the stress pass";
  }
  const auto users = static_cast<std::size_t>(
      util::env_int("GLOVE_STRESS_USERS", 100'000));
  const cdr::FingerprintDataset data = stress_population(users);

  const Engine engine;
  api::RunConfig config;
  config.strategy = api::kStrategySharded;
  config.k = 2;
  // Scale the decomposition down with the population so reduced-scale
  // runs (TSan job, local smoke) still exercise multiple shards.
  config.sharded.tile_size_m = 10'000.0;
  config.sharded.max_shard_users = std::clamp<std::size_t>(
      data.size() / 8, config.k, 2'000);
  const auto result = engine.run(data, config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const api::RunReport& report = result.value();

  EXPECT_TRUE(core::is_k_anonymous(report.anonymized, 2));
  EXPECT_EQ(report.counters.input_users, data.total_users());
  EXPECT_GE(api::find_metric(report, "shards"), 2.0);
  EXPECT_FALSE(report.shard_timings.empty());
  std::uint64_t covered = 0;
  for (const api::ShardTimingRow& row : report.shard_timings) {
    covered += row.input_fingerprints + row.deferred;
  }
  EXPECT_EQ(covered, data.size());
}

TEST(ShardedStress, ShardedBeatsFullWallClockByThreeX) {
  if (!stress_enabled()) {
    GTEST_SKIP() << "set GLOVE_STRESS=1 to run the stress pass";
  }
  const auto users = static_cast<std::size_t>(
      util::env_int("GLOVE_SPEEDUP_USERS", 2'000));
  const cdr::FingerprintDataset data = stress_population(users);
  const Engine engine;

  api::RunConfig full;
  full.strategy = api::kStrategyFull;
  full.k = 2;
  const double full_seconds = run_seconds(engine, data, full);

  api::RunConfig sharded;
  sharded.strategy = api::kStrategySharded;
  sharded.k = 2;
  sharded.sharded.tile_size_m = 10'000.0;
  sharded.sharded.max_shard_users = std::clamp<std::size_t>(
      data.size() / 8, sharded.k, 2'000);
  const double sharded_seconds = run_seconds(engine, data, sharded);

  // The sharding advantage is algorithmic (tiled quadratic cost), not
  // just parallel speedup, so 3x holds even on few cores at this scale.
  EXPECT_LE(sharded_seconds * 3.0, full_seconds)
      << "sharded " << sharded_seconds << "s vs full " << full_seconds
      << "s on " << data.size() << " fingerprints";
}

TEST(ShardedStress, ByteStableAcrossWorkerCountsAtScale) {
  if (!stress_enabled()) {
    GTEST_SKIP() << "set GLOVE_STRESS=1 to run the stress pass";
  }
  const auto users = static_cast<std::size_t>(
      util::env_int("GLOVE_SPEEDUP_USERS", 2'000));
  const cdr::FingerprintDataset data = stress_population(users);
  const Engine engine;

  std::string reference;
  for (const std::size_t workers : {1u, 4u}) {
    api::RunConfig config;
    config.strategy = api::kStrategySharded;
    config.k = 2;
    config.sharded.tile_size_m = 10'000.0;
    config.sharded.max_shard_users = std::clamp<std::size_t>(
        data.size() / 8, config.k, 2'000);
    config.sharded.workers = workers;
    const auto result = engine.run(data, config);
    ASSERT_TRUE(result.ok()) << result.error().message;
    const std::string csv = test::dataset_to_csv(result.value().anonymized);
    if (reference.empty()) {
      reference = csv;
    } else {
      EXPECT_EQ(csv, reference) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace glove
