// Property-based tests: invariants of the stretch metric, the merge
// operation and the GLOVE pipeline over randomized inputs (seed-swept via
// parameterized suites so failures reproduce deterministically).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "glove/core/accuracy.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/merge.hpp"
#include "glove/core/stretch.hpp"
#include "glove/util/rng.hpp"

namespace glove {
namespace {

cdr::Sample random_sample(util::Xoshiro256& rng, double region_m = 50'000.0,
                          double horizon_min = 10'000.0) {
  cdr::Sample s;
  s.sigma.x = util::uniform(rng, 0.0, region_m);
  s.sigma.y = util::uniform(rng, 0.0, region_m);
  s.sigma.dx = 100.0;
  s.sigma.dy = 100.0;
  s.tau.t = util::uniform(rng, 0.0, horizon_min);
  s.tau.dt = 1.0;
  return s;
}

cdr::Fingerprint random_fingerprint(util::Xoshiro256& rng, cdr::UserId id,
                                    std::size_t min_len = 2,
                                    std::size_t max_len = 12) {
  const std::size_t len =
      min_len + util::uniform_index(rng, max_len - min_len + 1);
  std::vector<cdr::Sample> samples;
  samples.reserve(len);
  for (std::size_t i = 0; i < len; ++i) samples.push_back(random_sample(rng));
  return cdr::Fingerprint{id, std::move(samples)};
}

cdr::FingerprintDataset random_dataset(std::uint64_t seed, std::size_t users) {
  util::Xoshiro256 rng{seed};
  std::vector<cdr::Fingerprint> fps;
  fps.reserve(users);
  for (cdr::UserId u = 0; u < users; ++u) {
    fps.push_back(random_fingerprint(rng, u));
  }
  return cdr::FingerprintDataset{std::move(fps)};
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededProperty, SampleStretchAxioms) {
  util::Xoshiro256 rng{GetParam()};
  const core::StretchLimits limits;
  for (int trial = 0; trial < 200; ++trial) {
    const cdr::Sample a = random_sample(rng);
    const cdr::Sample b = random_sample(rng);
    const core::SampleStretch ab = core::sample_stretch(a, 1, b, 1, limits);
    const core::SampleStretch ba = core::sample_stretch(b, 1, a, 1, limits);
    // Bounded.
    EXPECT_GE(ab.spatial, 0.0);
    EXPECT_GE(ab.temporal, 0.0);
    EXPECT_LE(ab.total(), 1.0 + 1e-12);
    // Symmetric for equal group sizes.
    EXPECT_NEAR(ab.total(), ba.total(), 1e-12);
    // Identity of indiscernibles (one direction).
    const core::SampleStretch aa = core::sample_stretch(a, 1, a, 1, limits);
    EXPECT_DOUBLE_EQ(aa.total(), 0.0);
  }
}

TEST_P(SeededProperty, MergedSampleStretchIsZeroAfterUnion) {
  // After merging, both originals are covered, so the stretch from the
  // merged sample to each original is *contained*: zero growth needed from
  // the merged side (up to (start, length) representation rounding).
  util::Xoshiro256 rng{GetParam()};
  for (int trial = 0; trial < 100; ++trial) {
    const cdr::Sample a = random_sample(rng);
    const cdr::Sample b = random_sample(rng);
    const cdr::Sample m = core::merge_samples(a, b);
    // The merged rectangle needs no growth to cover a or b.
    EXPECT_NEAR(core::raw_spatial_stretch_m(m.sigma, 1, a.sigma, 0), 0.0,
                1e-6);
    EXPECT_NEAR(core::raw_temporal_stretch_min(m.tau, 1, b.tau, 0), 0.0,
                1e-6);
  }
}

TEST_P(SeededProperty, MergeSamplesIsAssociativeOnCoverage) {
  // Union order must not change the final covering rectangle/interval
  // (up to floating-point rounding of the (start, length) encoding).
  util::Xoshiro256 rng{GetParam()};
  for (int trial = 0; trial < 100; ++trial) {
    const cdr::Sample a = random_sample(rng);
    const cdr::Sample b = random_sample(rng);
    const cdr::Sample c = random_sample(rng);
    const cdr::Sample left =
        core::merge_samples(core::merge_samples(a, b), c);
    const cdr::Sample right =
        core::merge_samples(a, core::merge_samples(b, c));
    EXPECT_NEAR(left.sigma.x, right.sigma.x, 1e-6);
    EXPECT_NEAR(left.sigma.x_end(), right.sigma.x_end(), 1e-6);
    EXPECT_NEAR(left.sigma.y, right.sigma.y, 1e-6);
    EXPECT_NEAR(left.sigma.y_end(), right.sigma.y_end(), 1e-6);
    EXPECT_NEAR(left.tau.t, right.tau.t, 1e-9);
    EXPECT_NEAR(left.tau.t_end(), right.tau.t_end(), 1e-6);
    EXPECT_EQ(left.contributors, right.contributors);
  }
}

TEST_P(SeededProperty, FingerprintStretchSymmetricAndBounded) {
  util::Xoshiro256 rng{GetParam()};
  for (int trial = 0; trial < 30; ++trial) {
    const cdr::Fingerprint a = random_fingerprint(rng, 0);
    const cdr::Fingerprint b = random_fingerprint(rng, 1);
    const double ab = core::fingerprint_stretch(a, b, {});
    const double ba = core::fingerprint_stretch(b, a, {});
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0 + 1e-12);
  }
}

TEST_P(SeededProperty, GloveEndToEndInvariants) {
  const cdr::FingerprintDataset data = random_dataset(GetParam(), 24);
  core::GloveConfig config;
  config.k = 2;
  const core::GloveResult result = core::anonymize(data, config);

  // Postcondition: k-anonymity.
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));
  // No user lost, none duplicated.
  std::vector<cdr::UserId> users;
  for (const auto& fp : result.anonymized.fingerprints()) {
    users.insert(users.end(), fp.members().begin(), fp.members().end());
  }
  std::sort(users.begin(), users.end());
  EXPECT_EQ(users.size(), 24u);
  EXPECT_EQ(std::adjacent_find(users.begin(), users.end()), users.end());
  // Truthfulness: every original sample covered (no suppression here).
  EXPECT_EQ(core::count_uncovered_samples(data, result.anonymized), 0u);
  // Published samples never lose the time-sorted invariant.
  for (const auto& fp : result.anonymized.fingerprints()) {
    for (std::size_t i = 1; i < fp.size(); ++i) {
      EXPECT_LE(fp.samples()[i - 1].tau.t, fp.samples()[i].tau.t);
    }
  }
}

TEST_P(SeededProperty, GloveWithSuppressionRespectsThresholds) {
  const cdr::FingerprintDataset data = random_dataset(GetParam() ^ 0xabc, 20);
  core::GloveConfig config;
  config.suppression = core::SuppressionThresholds{10'000.0, 240.0};
  const core::GloveResult result = core::anonymize(data, config);
  EXPECT_TRUE(core::is_k_anonymous(result.anonymized, 2));
  for (const auto& fp : result.anonymized.fingerprints()) {
    for (const auto& s : fp.samples()) {
      EXPECT_LE(s.sigma.accuracy_m(), 10'000.0 + 1e-9);
      EXPECT_LE(s.tau.dt, 240.0 + 1e-9);
    }
  }
  // Conservation: published + deleted = input samples (contributor-
  // weighted), since merging conserves contributors and only suppression
  // removes them.
  std::uint64_t published = 0;
  for (const auto& fp : result.anonymized.fingerprints()) {
    published += fp.total_contributors();
  }
  EXPECT_EQ(published + result.stats.deleted_samples,
            data.total_samples());
}

TEST_P(SeededProperty, ReshapeOutputsAreOverlapFreeAndCovering) {
  util::Xoshiro256 rng{GetParam() * 31 + 7};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<cdr::Sample> samples;
    const std::size_t n = 2 + util::uniform_index(rng, 10);
    for (std::size_t i = 0; i < n; ++i) {
      cdr::Sample s = random_sample(rng, 10'000.0, 500.0);
      s.tau.dt = util::uniform(rng, 1.0, 120.0);
      samples.push_back(s);
    }
    const auto out = core::reshape_samples(samples);
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_FALSE(cdr::time_overlaps(out[i - 1], out[i]));
    }
    // Contributor conservation.
    std::uint64_t before = 0;
    std::uint64_t after = 0;
    for (const auto& s : samples) before += s.contributors;
    for (const auto& s : out) after += s.contributors;
    EXPECT_EQ(before, after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace glove
