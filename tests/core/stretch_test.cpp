// Hand-computed checks of the stretch-effort equations (eq. 1-10).

#include "glove/core/stretch.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace glove::core {
namespace {

using test::cell;

TEST(SampleStretch, IdenticalSamplesCostNothing) {
  const cdr::Sample s = cell(0, 0, 100);
  const SampleStretch d = sample_stretch(s, 1, s, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.0);
  EXPECT_DOUBLE_EQ(d.total(), 0.0);
}

TEST(SampleStretch, PureTemporalGapHandComputed) {
  // Same cell; intervals [0,1] and [10,11].  Both directions stretch by
  // 10 min, so phi*_tau = 10; phi_tau = 10/480; weighted by 1/2.
  const cdr::Sample a = cell(0, 0, 0);
  const cdr::Sample b = cell(0, 0, 10);
  const SampleStretch d = sample_stretch(a, 1, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5 * 10.0 / 480.0);
}

TEST(SampleStretch, PureSpatialGapHandComputed) {
  // Same minute; cells 1 km apart on the x axis.  Each rectangle must grow
  // 1000 m towards the other: phi*_sigma = 1000; phi_sigma = 1000/20000.
  const cdr::Sample a = cell(0, 0, 50);
  const cdr::Sample b = cell(1'000, 0, 50);
  const SampleStretch d = sample_stretch(a, 1, b, 1, {});
  EXPECT_DOUBLE_EQ(d.temporal, 0.0);
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 1'000.0 / 20'000.0);
}

TEST(SampleStretch, DiagonalGapSumsAxes) {
  // 1 km east and 2 km north: l+r = 3000 in each direction.
  const cdr::Sample a = cell(0, 0, 50);
  const cdr::Sample b = cell(1'000, 2'000, 50);
  const SampleStretch d = sample_stretch(a, 1, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 3'000.0 / 20'000.0);
}

TEST(RawSpatialStretch, ContainmentIsAsymmetricPerDirection) {
  // a = [0,1000]^2 contains b = [400,500]^2: a needs no stretch, b needs
  // l=800 (left/south) + r=1000 (right/north) = 1800.
  const cdr::SpatialExtent a{0, 1'000, 0, 1'000};
  const cdr::SpatialExtent b{400, 100, 400, 100};
  EXPECT_DOUBLE_EQ(raw_spatial_stretch_m(a, 1, b, 1), 0.5 * 1'800.0);
}

TEST(RawSpatialStretch, PopulationWeightsShiftTheCost) {
  // Same geometry; group of 3 behind sample a: stretching b (1 user) is
  // cheap, so the weighted cost drops to 1800 * 1/4.
  const cdr::SpatialExtent a{0, 1'000, 0, 1'000};
  const cdr::SpatialExtent b{400, 100, 400, 100};
  EXPECT_DOUBLE_EQ(raw_spatial_stretch_m(a, 3, b, 1), 1'800.0 / 4.0);
  // And symmetric weighting from b's perspective.
  EXPECT_DOUBLE_EQ(raw_spatial_stretch_m(b, 1, a, 3), 1'800.0 / 4.0);
}

TEST(RawTemporalStretch, PartialOverlapHandComputed) {
  // [0, 20] vs [10, 40]: a stretches right by 20, b stretches left by 10.
  const cdr::TemporalExtent a{0, 20};
  const cdr::TemporalExtent b{10, 30};
  EXPECT_DOUBLE_EQ(raw_temporal_stretch_min(a, 1, b, 1),
                   0.5 * 20.0 + 0.5 * 10.0);
}

TEST(RawTemporalStretch, ContainedIntervalCostsOnlyInner) {
  // [0, 100] contains [40, 50]: a needs 0; b needs 40 left + 50 right.
  const cdr::TemporalExtent a{0, 100};
  const cdr::TemporalExtent b{40, 10};
  EXPECT_DOUBLE_EQ(raw_temporal_stretch_min(a, 1, b, 1), 0.5 * 90.0);
}

TEST(SampleStretch, SaturatesAtLimits) {
  // 30 km apart in space (> 20 km limit) and 10 h apart in time (> 8 h).
  const cdr::Sample a = cell(0, 0, 0);
  const cdr::Sample b = cell(30'000, 0, 600);
  const SampleStretch d = sample_stretch(a, 1, b, 1, {});
  EXPECT_DOUBLE_EQ(d.spatial, 0.5);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5);
  EXPECT_DOUBLE_EQ(d.total(), 1.0);
}

TEST(SampleStretch, CustomLimitsChangeNormalization) {
  StretchLimits limits;
  limits.phi_max_sigma_m = 10'000.0;
  limits.phi_max_tau_min = 240.0;
  const cdr::Sample a = cell(0, 0, 0);
  const cdr::Sample b = cell(1'000, 0, 24);
  const SampleStretch d = sample_stretch(a, 1, b, 1, limits);
  EXPECT_DOUBLE_EQ(d.spatial, 0.5 * 1'000.0 / 10'000.0);
  EXPECT_DOUBLE_EQ(d.temporal, 0.5 * 24.0 / 240.0);
}

TEST(SampleStretch, IsSymmetricForEqualGroups) {
  const cdr::Sample a = test::box(0, 100, 50, 200, 10, 5);
  const cdr::Sample b = test::box(900, 300, -100, 100, 200, 15);
  const SampleStretch ab = sample_stretch(a, 1, b, 1, {});
  const SampleStretch ba = sample_stretch(b, 1, a, 1, {});
  EXPECT_DOUBLE_EQ(ab.total(), ba.total());
}

TEST(FingerprintStretch, IdenticalFingerprintsAreZero) {
  const cdr::Fingerprint fp{0u, {cell(0, 0, 10), cell(1'000, 0, 700)}};
  EXPECT_DOUBLE_EQ(fingerprint_stretch(fp, fp, {}), 0.0);
}

TEST(FingerprintStretch, AveragesOverLongerFingerprint) {
  // a has 2 samples, b has 1.  delta(a1, b1) = 0 (identical);
  // delta(a2, b1) = temporal 10 min -> 10/960.
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(0, 0, 10)}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 0)}};
  EXPECT_DOUBLE_EQ(fingerprint_stretch(a, b, {}),
                   (0.0 + 0.5 * 10.0 / 480.0) / 2.0);
}

TEST(FingerprintStretch, IsSymmetric) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(500, 0, 300),
                                cell(2'000, 100, 800)}};
  const cdr::Fingerprint b{1u, {cell(100, 0, 30), cell(700, 0, 500)}};
  EXPECT_DOUBLE_EQ(fingerprint_stretch(a, b, {}),
                   fingerprint_stretch(b, a, {}));
}

TEST(FingerprintStretch, PicksMinimumMatchPerSample) {
  // b has a far sample and a near one; each a-sample must match the near
  // one (min over j), not the average.
  const cdr::Fingerprint a{0u, {cell(0, 0, 0)}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 0), cell(19'000, 0, 470)}};
  // longer is b (2 samples): b1 matches a1 at 0; b2 matches a1 at
  // spatial 19000/20000/2 + temporal 470/480/2.
  const double expected =
      (0.0 + 0.5 * 19'000.0 / 20'000.0 + 0.5 * 470.0 / 480.0) / 2.0;
  EXPECT_DOUBLE_EQ(fingerprint_stretch(a, b, {}), expected);
}

TEST(FingerprintStretch, BoundedByOne) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0)}};
  const cdr::Fingerprint b{1u, {cell(1e7, 1e7, 1e5)}};
  EXPECT_LE(fingerprint_stretch(a, b, {}), 1.0);
  EXPECT_DOUBLE_EQ(fingerprint_stretch(a, b, {}), 1.0);
}

TEST(FingerprintStretch, EmptyFingerprintCostsNothing) {
  const cdr::Fingerprint a{0u, {}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 0)}};
  EXPECT_DOUBLE_EQ(fingerprint_stretch(a, b, {}), 0.0);
}

// --- Property sweep: delta stays within [0, 1] and is monotone in the gap.

class StretchGapSweep : public ::testing::TestWithParam<double> {};

TEST_P(StretchGapSweep, BoundedAndMonotone) {
  const double gap = GetParam();
  const cdr::Sample a = cell(0, 0, 0);
  const cdr::Sample near = cell(gap, 0, gap / 10.0);
  const cdr::Sample far = cell(gap * 2, 0, gap / 5.0);
  const double d_near = sample_stretch(a, 1, near, 1, {}).total();
  const double d_far = sample_stretch(a, 1, far, 1, {}).total();
  EXPECT_GE(d_near, 0.0);
  EXPECT_LE(d_near, 1.0);
  EXPECT_LE(d_near, d_far);
}

INSTANTIATE_TEST_SUITE_P(Gaps, StretchGapSweep,
                         ::testing::Values(0.0, 10.0, 100.0, 1'000.0,
                                           5'000.0, 20'000.0, 100'000.0));

}  // namespace
}  // namespace glove::core
