#include "glove/core/glove.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/fixtures.hpp"
#include "glove/core/accuracy.hpp"

namespace glove::core {
namespace {

using test::cell;
using test::paired_dataset;

std::set<cdr::UserId> all_members(const cdr::FingerprintDataset& data) {
  std::set<cdr::UserId> users;
  for (const auto& fp : data.fingerprints()) {
    users.insert(fp.members().begin(), fp.members().end());
  }
  return users;
}

TEST(Glove, AchievesTwoAnonymity) {
  const GloveResult result = anonymize(paired_dataset(), GloveConfig{});
  EXPECT_TRUE(is_k_anonymous(result.anonymized, 2));
}

TEST(Glove, NoUserIsLostWithMergePolicy) {
  const cdr::FingerprintDataset input = paired_dataset();
  const GloveResult result = anonymize(input, GloveConfig{});
  EXPECT_EQ(all_members(result.anonymized), all_members(input));
  EXPECT_EQ(result.stats.discarded_fingerprints, 0u);
  EXPECT_EQ(result.anonymized.total_users(), input.total_users());
}

TEST(Glove, MergesTheNaturalPairs) {
  // The three constructed pairs are each other's nearest fingerprints, so
  // the greedy pass must merge exactly those (plus the outlier somewhere).
  const GloveResult result = anonymize(paired_dataset(), GloveConfig{});
  std::size_t natural_pairs = 0;
  for (const auto& fp : result.anonymized.fingerprints()) {
    std::set<cdr::UserId> members{fp.members().begin(), fp.members().end()};
    if (members == std::set<cdr::UserId>{0, 1} ||
        members == std::set<cdr::UserId>{2, 3} ||
        members == std::set<cdr::UserId>{4, 5}) {
      ++natural_pairs;
    }
  }
  EXPECT_GE(natural_pairs, 2u);  // the outlier joins one group
}

TEST(Glove, HigherKBuildsBiggerGroups) {
  GloveConfig config;
  config.k = 3;
  const GloveResult result = anonymize(paired_dataset(), config);
  EXPECT_TRUE(is_k_anonymous(result.anonymized, 3));
  for (const auto& fp : result.anonymized.fingerprints()) {
    EXPECT_GE(fp.group_size(), 3u);
  }
}

TEST(Glove, OutputGroupCountBounded) {
  const cdr::FingerprintDataset input = paired_dataset();
  GloveConfig config;
  config.k = 2;
  const GloveResult result = anonymize(input, config);
  EXPECT_LE(result.anonymized.size(), input.size() / config.k);
  EXPECT_GE(result.anonymized.size(), 1u);
}

TEST(Glove, EveryOriginalSampleIsCoveredWithoutSuppression) {
  // PPDP truthfulness (P2): no sample may escape its group's fingerprint.
  const cdr::FingerprintDataset input = paired_dataset();
  const GloveResult result = anonymize(input, GloveConfig{});
  EXPECT_EQ(count_uncovered_samples(input, result.anonymized), 0u);
}

TEST(Glove, DeterministicAcrossRuns) {
  const cdr::FingerprintDataset input = paired_dataset();
  const GloveResult a = anonymize(input, GloveConfig{});
  const GloveResult b = anonymize(input, GloveConfig{});
  ASSERT_EQ(a.anonymized.size(), b.anonymized.size());
  for (std::size_t i = 0; i < a.anonymized.size(); ++i) {
    EXPECT_EQ(a.anonymized[i].samples().size(),
              b.anonymized[i].samples().size());
    EXPECT_TRUE(std::equal(a.anonymized[i].members().begin(),
                           a.anonymized[i].members().end(),
                           b.anonymized[i].members().begin(),
                           b.anonymized[i].members().end()));
  }
}

TEST(Glove, LeftoverSuppressPolicyDropsUsers) {
  GloveConfig config;
  config.leftover_policy = LeftoverPolicy::kSuppress;
  const GloveResult result = anonymize(paired_dataset(), config);
  EXPECT_TRUE(is_k_anonymous(result.anonymized, 2));
  // 7 users, k=2: one leftover must have been dropped.
  EXPECT_EQ(result.stats.discarded_fingerprints, 1u);
  EXPECT_EQ(result.anonymized.total_users(), 6u);
}

TEST(Glove, SuppressionBoundsExtentsAndCountsDeletions) {
  GloveConfig config;
  config.suppression = SuppressionThresholds{15'000.0, 360.0};
  const GloveResult result = anonymize(paired_dataset(), config);
  EXPECT_TRUE(is_k_anonymous(result.anonymized, 2));
  for (const auto& fp : result.anonymized.fingerprints()) {
    for (const auto& s : fp.samples()) {
      EXPECT_LE(s.sigma.accuracy_m(), 15'000.0);
      EXPECT_LE(s.tau.dt, 360.0);
    }
  }
  // The far outlier forces suppression somewhere.
  EXPECT_GT(result.stats.deleted_samples, 0u);
}

TEST(Glove, StatsAreConsistent) {
  const cdr::FingerprintDataset input = paired_dataset();
  const GloveResult result = anonymize(input, GloveConfig{});
  EXPECT_EQ(result.stats.input_users, input.total_users());
  EXPECT_EQ(result.stats.input_samples, input.total_samples());
  EXPECT_EQ(result.stats.output_groups, result.anonymized.size());
  EXPECT_EQ(result.stats.output_samples, result.anonymized.total_samples());
  EXPECT_GE(result.stats.merges, 3u);
  EXPECT_GT(result.stats.stretch_evaluations, 0u);
}

TEST(Glove, RejectsInvalidArguments) {
  const cdr::FingerprintDataset input = paired_dataset();
  GloveConfig config;
  config.k = 1;
  EXPECT_THROW((void)anonymize(input, config), std::invalid_argument);
  config.k = 100;
  EXPECT_THROW((void)anonymize(input, config), std::invalid_argument);
}

TEST(Glove, ExactlyKUsersGivesOneGroup) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(100, 0, 5)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(0, 100, 9)});
  GloveConfig config;
  config.k = 3;
  const GloveResult result =
      anonymize(cdr::FingerprintDataset{std::move(fps)}, config);
  ASSERT_EQ(result.anonymized.size(), 1u);
  EXPECT_EQ(result.anonymized[0].group_size(), 3u);
}

TEST(IsKAnonymous, DetectsViolations) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(std::vector<cdr::UserId>{0u, 1u},
                   std::vector<cdr::Sample>{cell(0, 0, 0)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  const cdr::FingerprintDataset data{std::move(fps)};
  EXPECT_FALSE(is_k_anonymous(data, 2));
  EXPECT_TRUE(is_k_anonymous(data, 1));
}

// --- End-to-end on synthetic data, parameterized over k (Fig. 8 regime).

class GloveSynthetic : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GloveSynthetic, AnonymizesSyntheticCdr) {
  const std::uint32_t k = GetParam();
  const cdr::FingerprintDataset data =
      test::small_synth_dataset(60, /*days=*/3.0, /*seed=*/5);
  ASSERT_GE(data.size(), 50u);

  GloveConfig glove_config;
  glove_config.k = k;
  const GloveResult result = anonymize(data, glove_config);
  EXPECT_TRUE(is_k_anonymous(result.anonymized, k));
  EXPECT_EQ(result.anonymized.total_users(), data.total_users());
  EXPECT_EQ(count_uncovered_samples(data, result.anonymized), 0u);
}

INSTANTIATE_TEST_SUITE_P(KLevels, GloveSynthetic,
                         ::testing::Values(2u, 3u, 5u));

}  // namespace
}  // namespace glove::core
