#include "glove/core/scalability.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "glove/synth/generator.hpp"

namespace glove::core {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

TEST(FingerprintBounds, CoversAllSamples) {
  const cdr::Fingerprint fp{0u, {cell(0, 0, 10), cell(5'000, -2'000, 600),
                                 cell(1'000, 3'000, 100)}};
  const FingerprintBounds b = fingerprint_bounds(fp);
  EXPECT_DOUBLE_EQ(b.box.x, 0.0);
  EXPECT_DOUBLE_EQ(b.box.x_end(), 5'100.0);
  EXPECT_DOUBLE_EQ(b.box.y, -2'000.0);
  EXPECT_DOUBLE_EQ(b.box.y_end(), 3'100.0);
  EXPECT_DOUBLE_EQ(b.interval.t, 10.0);
  EXPECT_DOUBLE_EQ(b.interval.t_end(), 601.0);
}

TEST(StretchLowerBound, ZeroForOverlappingBoxes) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 10), cell(2'000, 0, 100)}};
  const cdr::Fingerprint b{1u, {cell(1'000, 0, 50)}};
  EXPECT_DOUBLE_EQ(stretch_lower_bound(fingerprint_bounds(a),
                                       fingerprint_bounds(b), {}),
                   0.0);
}

TEST(StretchLowerBound, NeverExceedsTrueStretch) {
  // Soundness on a spread of geometries.
  const std::vector<cdr::Fingerprint> fps{
      cdr::Fingerprint{0u, {cell(0, 0, 10), cell(500, 0, 300)}},
      cdr::Fingerprint{1u, {cell(30'000, 0, 20)}},
      cdr::Fingerprint{2u, {cell(5'000, 5'000, 5'000)}},
      cdr::Fingerprint{3u, {cell(100, 100, 11'000), cell(0, 0, 12'000)}},
  };
  for (const auto& a : fps) {
    for (const auto& b : fps) {
      const double lb = stretch_lower_bound(fingerprint_bounds(a),
                                            fingerprint_bounds(b), {});
      const double d = fingerprint_stretch(a, b, {});
      EXPECT_LE(lb, d + 1e-12);
    }
  }
}

TEST(KGapsPruned, MatchesBruteForceGaps) {
  synth::SynthConfig config = synth::civ_like(60, 37);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const auto brute = k_gaps(data, 3);
  std::uint64_t pruned = 0;
  const auto fast = k_gaps_pruned(data, 3, {}, &pruned);
  ASSERT_EQ(brute.size(), fast.size());
  for (std::size_t i = 0; i < brute.size(); ++i) {
    EXPECT_DOUBLE_EQ(brute[i].gap, fast[i].gap);
  }
}

TEST(KGapsPruned, ActuallyPrunesSpreadData) {
  // Users in two far-apart cities: cross-city pairs must be skipped.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 10; ++u) {
    const double base = u < 5 ? 0.0 : 400'000.0;
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            cell(base + u * 100.0, 0, u * 10.0),
                            cell(base + u * 100.0, 0, 700 + u * 10.0)});
  }
  std::uint64_t pruned = 0;
  (void)k_gaps_pruned(cdr::FingerprintDataset{std::move(fps)}, 2, {},
                      &pruned);
  EXPECT_GT(pruned, 0u);
}

TEST(KGapsPruned, RejectsInvalidArguments) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  const cdr::FingerprintDataset data{std::move(fps)};
  EXPECT_THROW((void)k_gaps_pruned(data, 2), std::invalid_argument);
}

TEST(ChunkedGlove, AchievesKAnonymityPerChunk) {
  synth::SynthConfig config = synth::civ_like(80, 41);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  ChunkedConfig chunked;
  chunked.glove.k = 2;
  chunked.chunk_size = 20;
  const GloveResult result = anonymize_chunked(data, chunked);
  EXPECT_TRUE(is_k_anonymous(result.anonymized, 2));
  EXPECT_EQ(result.anonymized.total_users(), data.total_users());
}

TEST(ChunkedGlove, NoUserLostAcrossChunks) {
  synth::SynthConfig config = synth::civ_like(50, 43);
  config.days = 2.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  ChunkedConfig chunked;
  chunked.chunk_size = 15;
  const GloveResult result = anonymize_chunked(data, chunked);
  std::set<cdr::UserId> users;
  for (const auto& fp : result.anonymized.fingerprints()) {
    users.insert(fp.members().begin(), fp.members().end());
  }
  EXPECT_EQ(users.size(), data.size());
}

TEST(ChunkedGlove, TailSmallerThanKAbsorbedIntoLastChunk) {
  // 11 users with chunk size 5 and k = 3: the final 1-user tail must be
  // folded into the previous chunk, not anonymized alone.
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 11; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            cell(u * 300.0, 0, u * 50.0)});
  }
  ChunkedConfig chunked;
  chunked.glove.k = 3;
  chunked.chunk_size = 5;
  const GloveResult result =
      anonymize_chunked(cdr::FingerprintDataset{std::move(fps)}, chunked);
  EXPECT_TRUE(is_k_anonymous(result.anonymized, 3));
  EXPECT_EQ(result.anonymized.total_users(), 11u);
}

TEST(ChunkedGlove, SingleChunkEqualsPlainGlove) {
  synth::SynthConfig config = synth::civ_like(30, 47);
  config.days = 2.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  ChunkedConfig chunked;
  chunked.chunk_size = 1'000;  // everything in one chunk
  const GloveResult plain = anonymize(data, chunked.glove);
  const GloveResult one_chunk = anonymize_chunked(data, chunked);
  EXPECT_EQ(one_chunk.anonymized.size(), plain.anonymized.size());
  EXPECT_EQ(one_chunk.stats.merges, plain.stats.merges);
}

TEST(ChunkedGlove, RejectsBadConfig) {
  synth::SynthConfig config = synth::civ_like(20, 49);
  config.days = 1.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  ChunkedConfig chunked;
  chunked.glove.k = 5;
  chunked.chunk_size = 3;
  EXPECT_THROW((void)anonymize_chunked(data, chunked),
               std::invalid_argument);
}

}  // namespace
}  // namespace glove::core
