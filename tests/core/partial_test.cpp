#include "glove/core/partial.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "glove/attack/linkage.hpp"
#include "glove/core/accuracy.hpp"
#include "glove/core/kgap.hpp"
#include "glove/synth/generator.hpp"

namespace glove::core {
namespace {

cdr::Sample cell(double x, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, 0.0, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

cdr::FingerprintDataset commuters() {
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 6; ++u) {
    std::vector<cdr::Sample> samples;
    const double home = u * 250.0;
    for (int d = 0; d < 5; ++d) {
      samples.push_back(cell(home, d * 1'440.0 + 60));        // home
      samples.push_back(cell(home, d * 1'440.0 + 1'380));     // home
      samples.push_back(cell(home + 4'000, d * 1'440 + 700)); // work
    }
    // One rare excursion that partial anonymization may withhold.
    samples.push_back(cell(60'000 + u * 5'000.0, 3'000.0 + u * 10));
    fps.emplace_back(u, std::move(samples));
  }
  return cdr::FingerprintDataset{std::move(fps), "commuters"};
}

TEST(ReduceToTopLocations, KeepsOnlyTopTiles) {
  const cdr::FingerprintDataset data = commuters();
  const cdr::FingerprintDataset reduced =
      reduce_to_top_locations(data, 2, 1'000.0);
  ASSERT_EQ(reduced.size(), data.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    // The excursion sample is gone; home and work samples remain.
    EXPECT_EQ(reduced[i].size(), data[i].size() - 1);
  }
}

TEST(ReduceToTopLocations, SingleLocationKeepsDominantTile) {
  const cdr::FingerprintDataset reduced =
      reduce_to_top_locations(commuters(), 1, 1'000.0);
  for (const auto& fp : reduced.fingerprints()) {
    // 10 home samples dominate 5 work samples.
    EXPECT_EQ(fp.size(), 10u);
  }
}

TEST(ReduceToTopLocations, RejectsZeroLocations) {
  EXPECT_THROW((void)reduce_to_top_locations(commuters(), 0, 1'000.0),
               std::invalid_argument);
}

TEST(AnonymizePartial, AchievesKOnTheReducedSurface) {
  PartialConfig config;
  config.glove.k = 2;
  config.top_locations = 2;
  const PartialResult result = anonymize_partial(commuters(), config);
  EXPECT_TRUE(is_k_anonymous(result.glove.anonymized, 2));
  EXPECT_EQ(result.withheld_samples, 6u);  // one excursion per user
}

TEST(AnonymizePartial, CheaperThanFullLength) {
  // Sec. 9's claim that partial anonymization "is less expensive to
  // achieve than the full-length version" shows up structurally: the
  // anonymization operates on a strictly smaller surface (fewer samples,
  // so eq. 10's quadratic per-pair cost shrinks) and withholds the
  // out-of-surface samples instead of paying generalization for them.
  synth::SynthConfig synth_config = synth::civ_like(60, 61);
  synth_config.days = 5.0;
  const cdr::FingerprintDataset data =
      synth::generate_dataset(synth_config);
  // Top-1 surface (the "home only" adversary); with the strongly local
  // mobility of CDR users, larger surfaces can already cover everything.
  PartialConfig config;
  config.top_locations = 1;
  const PartialResult partial = anonymize_partial(data, config);
  EXPECT_GT(partial.withheld_samples, 0u);
  EXPECT_LT(partial.glove.stats.input_samples, data.total_samples());
  EXPECT_TRUE(is_k_anonymous(partial.glove.anonymized, config.glove.k));
  // Accounting consistency: published surface + withheld = original.
  EXPECT_EQ(partial.glove.stats.input_samples + partial.withheld_samples,
            data.total_samples());
}

TEST(AnonymizePartial, DefeatsTopLocationAttackWithinSurface) {
  // Against the assumed adversary (top-L locations), the partial output
  // must provide anonymity sets of >= k.
  synth::SynthConfig synth_config = synth::civ_like(50, 63);
  synth_config.days = 4.0;
  const cdr::FingerprintDataset data =
      synth::generate_dataset(synth_config);
  PartialConfig config;
  config.glove.k = 2;
  config.top_locations = 3;
  const PartialResult result = anonymize_partial(data, config);

  attack::TopLocationsAttack attack_model;
  attack_model.top_n = 3;
  attack_model.tile_m = config.tile_m;
  const attack::AttackReport report =
      attack_model.run(data, result.glove.anonymized);
  EXPECT_EQ(report.below_k[0], 0u);
}

}  // namespace
}  // namespace glove::core
