#include "glove/core/kgap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/fixtures.hpp"

namespace glove::core {
namespace {

using test::cell;

cdr::FingerprintDataset triangle_dataset() {
  // Users 0 and 1 are near-identical; user 2 is far from both.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0),
                                                cell(100, 0, 600)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(0, 0, 2),
                                                cell(100, 0, 605)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(15'000, 15'000, 100),
                                                cell(15'000, 15'000, 900)});
  return cdr::FingerprintDataset{std::move(fps)};
}

TEST(KGap, NearestNeighborIsSelected) {
  const auto entries = k_gaps(triangle_dataset(), 2);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].neighbors, std::vector<std::size_t>{1});
  EXPECT_EQ(entries[1].neighbors, std::vector<std::size_t>{0});
  // The outlier's nearest is one of the close pair.
  ASSERT_EQ(entries[2].neighbors.size(), 1u);
}

TEST(KGap, CloseUsersHaveSmallGap) {
  const auto entries = k_gaps(triangle_dataset(), 2);
  EXPECT_LT(entries[0].gap, 0.01);
  EXPECT_GT(entries[2].gap, entries[0].gap * 10);
}

TEST(KGap, DuplicateFingerprintsAreAlreadyAnonymous) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(9'000, 0, 400)});
  const auto gaps = k_gap_values(cdr::FingerprintDataset{std::move(fps)}, 2);
  EXPECT_DOUBLE_EQ(gaps[0], 0.0);
  EXPECT_DOUBLE_EQ(gaps[1], 0.0);
  EXPECT_GT(gaps[2], 0.0);
}

TEST(KGap, GrowsWithK) {
  // With k=3 the near pair must also absorb the outlier, raising the gap.
  const auto k2 = k_gap_values(triangle_dataset(), 2);
  const auto k3 = k_gap_values(triangle_dataset(), 3);
  for (std::size_t i = 0; i < k2.size(); ++i) {
    EXPECT_GE(k3[i], k2[i]);
  }
  EXPECT_GT(k3[0], k2[0]);
}

TEST(KGap, ValuesWithinUnitInterval) {
  const auto gaps = k_gap_values(triangle_dataset(), 3);
  for (const double g : gaps) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(KGap, NeighborCountIsKMinusOne) {
  std::vector<cdr::Fingerprint> fps;
  for (cdr::UserId u = 0; u < 10; ++u) {
    fps.emplace_back(u, std::vector<cdr::Sample>{
                            cell(u * 200.0, 0, u * 10.0)});
  }
  const auto entries = k_gaps(cdr::FingerprintDataset{std::move(fps)}, 5);
  for (const auto& e : entries) {
    EXPECT_EQ(e.neighbors.size(), 4u);
  }
}

TEST(KGap, MatchesManualAverageOfNearestStretches) {
  const cdr::FingerprintDataset data = triangle_dataset();
  const auto entries = k_gaps(data, 3);
  // For k=3 every other user is a neighbour; gap = mean of both stretches.
  const double expected0 = (fingerprint_stretch(data[0], data[1], {}) +
                            fingerprint_stretch(data[0], data[2], {})) /
                           2.0;
  EXPECT_DOUBLE_EQ(entries[0].gap, expected0);
}

TEST(KGap, RejectsInvalidArguments) {
  EXPECT_THROW((void)k_gaps(triangle_dataset(), 1), std::invalid_argument);
  EXPECT_THROW((void)k_gaps(triangle_dataset(), 4), std::invalid_argument);
}

TEST(KGap, DeterministicAcrossRuns) {
  const auto a = k_gap_values(triangle_dataset(), 2);
  const auto b = k_gap_values(triangle_dataset(), 2);
  EXPECT_EQ(a, b);
}

TEST(KGap, HooksReportMonotoneQuantumProgressAcrossWorkerThreads) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  util::RunHooks hooks;
  std::mutex observed_mutex;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> observed;
  hooks.progress = [&](std::uint64_t done, std::uint64_t total) {
    const std::lock_guard lock{observed_mutex};
    observed.emplace_back(done, total);
  };
  const auto hooked = k_gaps(data, 2, {}, hooks);
  EXPECT_EQ(hooked.size(), data.size());
  // Progress is measured in pair evaluations (n*(n-1) total), flushed per
  // work quantum — at least one report per worker range, never more than
  // the evaluation count.
  const std::uint64_t total_evals =
      static_cast<std::uint64_t>(data.size()) * (data.size() - 1);
  ASSERT_FALSE(observed.empty());
  ASSERT_LE(observed.size(), total_evals);
  std::uint64_t previous = 0;
  for (const auto& [done, total] : observed) {
    EXPECT_EQ(total, total_evals);
    EXPECT_GT(done, previous);  // strictly increasing under the lock
    previous = done;
  }
  EXPECT_EQ(observed.back().first, total_evals);

  // Hooked and hookless runs agree (same rows, same parallel decomposition).
  const auto plain = k_gaps(data, 2);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(hooked[i].gap, plain[i].gap);
  }
}

TEST(KGap, CancellationAbortsTheMatrixBuild) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  util::RunHooks hooks;
  hooks.cancel = util::CancellationToken{};
  hooks.cancel->request_cancel();
  EXPECT_THROW((void)k_gaps(data, 2, {}, hooks), util::CancelledError);
}

}  // namespace
}  // namespace glove::core
