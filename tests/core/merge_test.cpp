#include "glove/core/merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/fixtures.hpp"

namespace glove::core {
namespace {

using test::cell;

cdr::Sample make_sample(double x, double dx, double y, double dy, double t,
                        double dt, std::uint32_t contributors = 1) {
  cdr::Sample s = test::box(x, dx, y, dy, t, dt);
  s.contributors = contributors;
  return s;
}

bool sample_covers(const cdr::Sample& outer, const cdr::Sample& inner) {
  constexpr double eps = 1e-9;
  return outer.sigma.x <= inner.sigma.x + eps &&
         outer.sigma.x_end() + eps >= inner.sigma.x_end() &&
         outer.sigma.y <= inner.sigma.y + eps &&
         outer.sigma.y_end() + eps >= inner.sigma.y_end() &&
         outer.tau.t <= inner.tau.t + eps &&
         outer.tau.t_end() + eps >= inner.tau.t_end();
}

bool fingerprint_covers(const cdr::Fingerprint& merged,
                        const cdr::Fingerprint& original) {
  return std::all_of(
      original.samples().begin(), original.samples().end(),
      [&](const cdr::Sample& s) {
        return std::any_of(merged.samples().begin(), merged.samples().end(),
                           [&](const cdr::Sample& m) {
                             return sample_covers(m, s);
                           });
      });
}

TEST(MergeSamples, UnionOfRectsAndIntervals) {
  const cdr::Sample a = make_sample(0, 100, 0, 100, 10, 5);
  const cdr::Sample b = make_sample(300, 100, -200, 100, 30, 10);
  const cdr::Sample m = merge_samples(a, b);
  EXPECT_DOUBLE_EQ(m.sigma.x, 0.0);
  EXPECT_DOUBLE_EQ(m.sigma.dx, 400.0);
  EXPECT_DOUBLE_EQ(m.sigma.y, -200.0);
  EXPECT_DOUBLE_EQ(m.sigma.dy, 300.0);
  EXPECT_DOUBLE_EQ(m.tau.t, 10.0);
  EXPECT_DOUBLE_EQ(m.tau.dt, 30.0);
  EXPECT_EQ(m.contributors, 2u);
}

TEST(MergeSamples, IsCommutative) {
  const cdr::Sample a = make_sample(0, 100, 50, 80, 10, 5);
  const cdr::Sample b = make_sample(300, 50, -200, 400, 30, 10);
  EXPECT_EQ(merge_samples(a, b), merge_samples(b, a));
}

TEST(MergeSamples, IdempotentOnIdenticalGeometry) {
  const cdr::Sample a = cell(100, 200, 50);
  const cdr::Sample m = merge_samples(a, a);
  EXPECT_EQ(m.sigma, a.sigma);
  EXPECT_EQ(m.tau, a.tau);
  EXPECT_EQ(m.contributors, 2u);
}

TEST(MergeSamples, SumsContributors) {
  const cdr::Sample a = make_sample(0, 1, 0, 1, 0, 1, 3);
  const cdr::Sample b = make_sample(0, 1, 0, 1, 0, 1, 5);
  EXPECT_EQ(merge_samples(a, b).contributors, 8u);
}

TEST(ReshapeSamples, MergesOverlappingRun) {
  std::vector<cdr::Sample> samples{
      make_sample(0, 100, 0, 100, 0, 10),
      make_sample(1'000, 100, 0, 100, 5, 10),   // overlaps first
      make_sample(2'000, 100, 0, 100, 100, 10), // separate
  };
  const auto out = reshape_samples(samples);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].tau.t, 0.0);
  EXPECT_DOUBLE_EQ(out[0].tau.dt, 15.0);
  EXPECT_DOUBLE_EQ(out[0].sigma.dx, 1'100.0);  // union of both rects
  EXPECT_DOUBLE_EQ(out[1].tau.t, 100.0);
}

TEST(ReshapeSamples, TransitiveOverlapChainsCollapse) {
  std::vector<cdr::Sample> samples{
      make_sample(0, 100, 0, 100, 0, 10),
      make_sample(0, 100, 0, 100, 8, 10),
      make_sample(0, 100, 0, 100, 16, 10),
  };
  const auto out = reshape_samples(samples);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].tau.t, 0.0);
  EXPECT_DOUBLE_EQ(out[0].tau.t_end(), 26.0);
}

TEST(ReshapeSamples, NoOverlapIsIdentity) {
  std::vector<cdr::Sample> samples{cell(0, 0, 0), cell(100, 0, 10),
                                   cell(200, 0, 20)};
  const auto out = reshape_samples(samples);
  EXPECT_EQ(out.size(), 3u);
}

TEST(ReshapeSamples, OutputHasNoOverlaps) {
  std::vector<cdr::Sample> samples;
  for (int i = 0; i < 20; ++i) {
    samples.push_back(
        make_sample(i * 50.0, 100, 0, 100, i * 3.0, (i % 5) + 1.0));
  }
  const auto out = reshape_samples(samples);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_FALSE(cdr::time_overlaps(out[i - 1], out[i]));
  }
}

TEST(SuppressSamples, DropsOverStretchedSamples) {
  std::vector<cdr::Sample> samples{
      make_sample(0, 100, 0, 100, 0, 10),          // fine
      make_sample(0, 30'000, 0, 100, 20, 10, 4),   // too wide
      make_sample(0, 100, 0, 100, 40, 900, 2),     // too long
  };
  MergeStats stats;
  const auto out =
      suppress_samples(samples, SuppressionThresholds{15'000.0, 360.0},
                       &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.suppressed_merged_samples, 2u);
  EXPECT_EQ(stats.suppressed_original_samples, 6u);  // 4 + 2 contributors
}

TEST(SuppressSamples, NoThresholdViolationsKeepsAll) {
  std::vector<cdr::Sample> samples{cell(0, 0, 0), cell(100, 0, 10)};
  MergeStats stats;
  const auto out =
      suppress_samples(samples, SuppressionThresholds{15'000.0, 360.0},
                       &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.suppressed_merged_samples, 0u);
}

TEST(MergeFingerprints, MembersAreUnioned) {
  const cdr::Fingerprint a{{0u, 1u}, {cell(0, 0, 0)}};
  const cdr::Fingerprint b{2u, {cell(0, 0, 5)}};
  const cdr::Fingerprint m = merge_fingerprints(a, b, {});
  EXPECT_EQ(m.group_size(), 3u);
}

TEST(MergeFingerprints, ResultNoLongerThanShorterInput) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(100, 0, 100),
                                cell(200, 0, 200), cell(300, 0, 300)}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 10), cell(200, 0, 210)}};
  const cdr::Fingerprint m = merge_fingerprints(a, b, {});
  EXPECT_LE(m.size(), b.size());
  EXPECT_GE(m.size(), 1u);
}

TEST(MergeFingerprints, CoversBothInputsWithoutSuppression) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(500, 0, 120),
                                cell(1'000, 500, 400)}};
  const cdr::Fingerprint b{1u, {cell(50, 0, 30), cell(900, 450, 380)}};
  MergeOptions options;  // reshape on, no suppression
  const cdr::Fingerprint m = merge_fingerprints(a, b, options);
  EXPECT_TRUE(fingerprint_covers(m, a));
  EXPECT_TRUE(fingerprint_covers(m, b));
}

TEST(MergeFingerprints, ContributorsAreConserved) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(500, 0, 120)}};
  const cdr::Fingerprint b{1u, {cell(50, 0, 30), cell(900, 450, 380),
                                cell(20, 10, 700)}};
  const cdr::Fingerprint m = merge_fingerprints(a, b, {});
  EXPECT_EQ(m.total_contributors(),
            a.total_contributors() + b.total_contributors());
}

TEST(MergeFingerprints, ReshapeRemovesTemporalOverlaps) {
  // Construct samples far apart in space but close in time, the Fig. 6b
  // pathology; with reshape the output must be overlap-free.
  const cdr::Fingerprint a{0u, {cell(0, 0, 100), cell(50'000, 0, 104)}};
  const cdr::Fingerprint b{1u, {cell(0, 100, 102), cell(50'000, 100, 101)}};
  MergeOptions options;
  options.reshape = true;
  const cdr::Fingerprint m = merge_fingerprints(a, b, options);
  for (std::size_t i = 1; i < m.size(); ++i) {
    EXPECT_FALSE(cdr::time_overlaps(m.samples()[i - 1], m.samples()[i]));
  }
}

TEST(MergeFingerprints, SuppressionBoundsPublishedExtents) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(40'000, 0, 700)}};
  const cdr::Fingerprint b{1u, {cell(100, 0, 10), cell(200, 0, 1'300)}};
  MergeOptions options;
  options.suppression = SuppressionThresholds{15'000.0, 360.0};
  MergeStats stats;
  const cdr::Fingerprint m = merge_fingerprints(a, b, options, &stats);
  for (const cdr::Sample& s : m.samples()) {
    EXPECT_LE(s.sigma.accuracy_m(), 15'000.0);
    EXPECT_LE(s.tau.dt, 360.0);
  }
}

TEST(MergeFingerprints, EmptyInputYieldsOtherSide) {
  const cdr::Fingerprint a{0u, {}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 0), cell(100, 0, 50)}};
  const cdr::Fingerprint m = merge_fingerprints(a, b, {});
  EXPECT_EQ(m.group_size(), 2u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(MergeFingerprints, IdenticalFingerprintsStayIntact) {
  const std::vector<cdr::Sample> samples{cell(0, 0, 0), cell(500, 0, 300)};
  const cdr::Fingerprint a{0u, samples};
  const cdr::Fingerprint b{1u, samples};
  const cdr::Fingerprint m = merge_fingerprints(a, b, {});
  ASSERT_EQ(m.size(), 2u);
  // Geometry unchanged; only contributors grew.
  EXPECT_EQ(m.samples()[0].sigma, samples[0].sigma);
  EXPECT_EQ(m.samples()[0].tau, samples[0].tau);
  EXPECT_EQ(m.samples()[0].contributors, 2u);
}

TEST(MergeStatsCounts, SampleUnionsAccumulate) {
  const cdr::Fingerprint a{0u, {cell(0, 0, 0), cell(100, 0, 50)}};
  const cdr::Fingerprint b{1u, {cell(0, 0, 5)}};
  MergeStats stats;
  (void)merge_fingerprints(a, b, {}, &stats);
  EXPECT_GE(stats.sample_unions, 2u);
}

}  // namespace
}  // namespace glove::core
