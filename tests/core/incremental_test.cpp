#include "glove/core/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "glove/core/accuracy.hpp"
#include "glove/synth/generator.hpp"

namespace glove::core {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

cdr::FingerprintDataset base_release() {
  synth::SynthConfig config = synth::civ_like(40, 71);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  return anonymize(data, {}).anonymized;
}

cdr::FingerprintDataset newcomers(std::size_t count, std::uint64_t seed) {
  synth::SynthConfig config = synth::civ_like(count, seed);
  config.days = 3.0;
  cdr::FingerprintDataset data = synth::generate_dataset(config);
  // Re-id users so they do not collide with the base release.
  std::vector<cdr::Fingerprint> shifted;
  for (std::size_t i = 0; i < data.size(); ++i) {
    shifted.emplace_back(static_cast<cdr::UserId>(10'000 + i),
                         std::vector<cdr::Sample>{data[i].samples().begin(),
                                                  data[i].samples().end()});
  }
  return cdr::FingerprintDataset{std::move(shifted), "newcomers"};
}

TEST(IncrementalUpdate, PreservesKAnonymity) {
  const cdr::FingerprintDataset base = base_release();
  const UpdateResult update = anonymize_update(base, newcomers(12, 72), {});
  EXPECT_TRUE(is_k_anonymous(update.anonymized, 2));
}

TEST(IncrementalUpdate, NoUserLostOrDuplicated) {
  const cdr::FingerprintDataset base = base_release();
  const cdr::FingerprintDataset extra = newcomers(12, 73);
  const UpdateResult update = anonymize_update(base, extra, {});
  std::set<cdr::UserId> users;
  std::size_t total = 0;
  for (const auto& fp : update.anonymized.fingerprints()) {
    users.insert(fp.members().begin(), fp.members().end());
    total += fp.group_size();
  }
  EXPECT_EQ(users.size(), total);  // no duplicates
  EXPECT_EQ(total, base.total_users() + extra.size());
}

TEST(IncrementalUpdate, ExistingGroupsNeverSplit) {
  // Every group of the base release must survive as a (superset) group of
  // the update: attackers holding both releases learn nothing from group
  // intersections.
  const cdr::FingerprintDataset base = base_release();
  const UpdateResult update = anonymize_update(base, newcomers(10, 74), {});
  for (const auto& old_group : base.fingerprints()) {
    const std::set<cdr::UserId> old_members{old_group.members().begin(),
                                            old_group.members().end()};
    bool found_superset = false;
    for (const auto& new_group : update.anonymized.fingerprints()) {
      const std::set<cdr::UserId> members{new_group.members().begin(),
                                          new_group.members().end()};
      if (std::includes(members.begin(), members.end(), old_members.begin(),
                        old_members.end())) {
        found_superset = true;
        break;
      }
    }
    EXPECT_TRUE(found_superset);
  }
}

TEST(IncrementalUpdate, AccountsEveryNewcomer) {
  const cdr::FingerprintDataset base = base_release();
  const cdr::FingerprintDataset extra = newcomers(15, 75);
  const UpdateResult update = anonymize_update(base, extra, {});
  EXPECT_EQ(update.stats.new_users, extra.size());
  EXPECT_LE(update.stats.joined_existing_groups, extra.size());
  // Everyone who did not join an existing group ended up in a new one.
  EXPECT_EQ(update.anonymized.total_users(),
            base.total_users() + extra.size());
}

TEST(IncrementalUpdate, FewNewcomersJoinGroups) {
  // A single newcomer cannot form a group of 2: it must join.
  const cdr::FingerprintDataset base = base_release();
  const UpdateResult update = anonymize_update(base, newcomers(1, 76), {});
  EXPECT_EQ(update.stats.joined_existing_groups, 1u);
  EXPECT_EQ(update.stats.formed_new_groups, 0u);
  EXPECT_TRUE(is_k_anonymous(update.anonymized, 2));
}

TEST(IncrementalUpdate, NewcomerCoverageMaintained) {
  // Truthfulness extends to newcomers: their samples are covered by their
  // group's published fingerprint (no suppression configured).
  const cdr::FingerprintDataset base = base_release();
  const cdr::FingerprintDataset extra = newcomers(8, 77);
  const UpdateResult update = anonymize_update(base, extra, {});
  EXPECT_EQ(count_uncovered_samples(extra, update.anonymized), 0u);
}

TEST(IncrementalUpdate, EmptyNewcomerSetIsIdentity) {
  // A window with no newcomers must republish the release unchanged —
  // this is what lets a serve epoch skip cleanly when every event in a
  // window came from already-published users.
  const cdr::FingerprintDataset base = base_release();
  const UpdateResult update =
      anonymize_update(base, cdr::FingerprintDataset{}, {});
  EXPECT_EQ(update.stats.new_users, 0u);
  EXPECT_EQ(update.stats.joined_existing_groups, 0u);
  EXPECT_EQ(update.stats.formed_new_groups, 0u);
  ASSERT_EQ(update.anonymized.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto& got = update.anonymized[i];
    EXPECT_TRUE(std::equal(got.members().begin(), got.members().end(),
                           base[i].members().begin(),
                           base[i].members().end()));
    EXPECT_TRUE(std::equal(got.samples().begin(), got.samples().end(),
                           base[i].samples().begin(),
                           base[i].samples().end()));
  }
}

TEST(IncrementalUpdate, FewerNewcomersThanKAllJoinExistingGroups) {
  // Two newcomers under k=3 cannot form a group of their own: both must
  // join published groups, and the result stays 3-anonymous.
  GloveConfig config;
  config.k = 3;
  synth::SynthConfig synth_config = synth::civ_like(30, 79);
  synth_config.days = 3.0;
  const cdr::FingerprintDataset base =
      anonymize(synth::generate_dataset(synth_config), config).anonymized;
  ASSERT_TRUE(is_k_anonymous(base, 3));

  const UpdateResult update =
      anonymize_update(base, newcomers(2, 80), config);
  EXPECT_EQ(update.stats.joined_existing_groups, 2u);
  EXPECT_EQ(update.stats.formed_new_groups, 0u);
  EXPECT_TRUE(is_k_anonymous(update.anonymized, 3));
  EXPECT_EQ(update.anonymized.total_users(), base.total_users() + 2);
}

TEST(IncrementalUpdate, RejectsNewcomerIdAlreadyPublished) {
  const cdr::FingerprintDataset base = base_release();
  const cdr::UserId taken = base[0].members().front();
  std::vector<cdr::Fingerprint> dupes;
  dupes.emplace_back(taken, std::vector<cdr::Sample>{cell(0, 0, 0)});
  try {
    (void)anonymize_update(
        base, cdr::FingerprintDataset{std::move(dupes)}, {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(std::to_string(taken)), std::string::npos)
        << message;
    EXPECT_NE(message.find("appears in both"), std::string::npos)
        << message;
  }
}

TEST(IncrementalUpdate, PreCancelledTokenAborts) {
  const cdr::FingerprintDataset base = base_release();
  util::RunHooks hooks;
  hooks.cancel.emplace();
  hooks.cancel->request_cancel();
  EXPECT_THROW((void)anonymize_update(base, newcomers(6, 81), {}, hooks),
               util::CancelledError);
}

TEST(IncrementalUpdate, CancellationMidUpdateAborts) {
  // Cancel from inside the progress callback — the way an interactive
  // caller aborts a run it is watching.  The update must stop with
  // CancelledError instead of returning a partial release.
  const cdr::FingerprintDataset base = base_release();
  util::RunHooks hooks;
  hooks.cancel.emplace();
  hooks.progress = [&hooks](std::uint64_t, std::uint64_t) {
    hooks.cancel->request_cancel();
  };
  EXPECT_THROW((void)anonymize_update(base, newcomers(8, 82), {}, hooks),
               util::CancelledError);
}

TEST(IncrementalUpdate, RejectsUnanonymizedBase) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0)});
  const cdr::FingerprintDataset base{std::move(fps)};
  EXPECT_THROW((void)anonymize_update(base, newcomers(2, 78), {}),
               std::invalid_argument);
}

TEST(IncrementalUpdate, RejectsGroupedNewcomers) {
  const cdr::FingerprintDataset base = base_release();
  std::vector<cdr::Fingerprint> grouped;
  grouped.emplace_back(std::vector<cdr::UserId>{20'000u, 20'001u},
                       std::vector<cdr::Sample>{cell(0, 0, 0)});
  EXPECT_THROW((void)anonymize_update(
                   base, cdr::FingerprintDataset{std::move(grouped)}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace glove::core
