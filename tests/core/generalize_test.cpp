#include "glove/core/generalize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "glove/core/kgap.hpp"

namespace glove::core {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

TEST(GeneralizeSample, SnapsToCoarserTile) {
  const cdr::Sample s = cell(1'230.0, 2'860.0, 125.0);
  const cdr::Sample g = generalize_sample(s, {1'000.0, 60.0});
  EXPECT_DOUBLE_EQ(g.sigma.x, 1'000.0);
  EXPECT_DOUBLE_EQ(g.sigma.dx, 1'000.0);
  EXPECT_DOUBLE_EQ(g.sigma.y, 2'000.0);
  EXPECT_DOUBLE_EQ(g.sigma.dy, 1'000.0);
  EXPECT_DOUBLE_EQ(g.tau.t, 120.0);
  EXPECT_DOUBLE_EQ(g.tau.dt, 60.0);
}

TEST(GeneralizeSample, ContainsTheOriginal) {
  const cdr::Sample s = cell(1'230.0, 2'860.0, 125.0);
  const cdr::Sample g = generalize_sample(s, {2'500.0, 120.0});
  EXPECT_LE(g.sigma.x, s.sigma.x);
  EXPECT_GE(g.sigma.x_end(), s.sigma.x_end());
  EXPECT_LE(g.sigma.y, s.sigma.y);
  EXPECT_GE(g.sigma.y_end(), s.sigma.y_end());
  EXPECT_LE(g.tau.t, s.tau.t);
  EXPECT_GE(g.tau.t_end(), s.tau.t_end());
}

TEST(GeneralizeSample, CellSpanningTwoTilesWidensToBoth) {
  // Interval [950, 1050] straddles the 1 km tile edge -> [0, 2000].
  cdr::Sample s = cell(950.0, 0.0, 0.0);
  const cdr::Sample g = generalize_sample(s, {1'000.0, 60.0});
  EXPECT_DOUBLE_EQ(g.sigma.x, 0.0);
  EXPECT_DOUBLE_EQ(g.sigma.dx, 2'000.0);
}

TEST(GeneralizeSample, IdentityAtOriginalGranularity) {
  const cdr::Sample s = cell(1'200.0, 300.0, 42.0);
  const cdr::Sample g = generalize_sample(s, {100.0, 1.0});
  EXPECT_EQ(g, s);
}

TEST(GeneralizeSample, RejectsNonPositiveLevels) {
  const cdr::Sample s = cell(0, 0, 0);
  EXPECT_THROW((void)generalize_sample(s, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)generalize_sample(s, {1.0, -1.0}),
               std::invalid_argument);
}

TEST(GeneralizeDataset, CollapsesDuplicateSamples) {
  // Two samples 200 m and 5 min apart collapse under 1 km / 30 min tiles.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(100, 0, 10),
                                                cell(300, 0, 15)});
  const auto out =
      generalize_dataset(cdr::FingerprintDataset{std::move(fps)},
                         {1'000.0, 30.0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0].samples()[0].contributors, 2u);
}

TEST(GeneralizeDataset, PreservesMembersAndOrder) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(7u, std::vector<cdr::Sample>{cell(0, 0, 10)});
  fps.emplace_back(3u, std::vector<cdr::Sample>{cell(5'000, 0, 700)});
  const auto out =
      generalize_dataset(cdr::FingerprintDataset{std::move(fps)},
                         {1'000.0, 60.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].members()[0], 7u);
  EXPECT_EQ(out[1].members()[0], 3u);
}

TEST(GeneralizeDataset, MakesDistinctUsersIdentical) {
  // 300 m and 10 min apart: identical under 1 km / 30 min generalization —
  // the Fig. 1b mechanism.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(100, 100, 5)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(400, 200, 15)});
  const auto out =
      generalize_dataset(cdr::FingerprintDataset{std::move(fps)},
                         {1'000.0, 30.0});
  EXPECT_EQ(out[0].samples()[0], out[1].samples()[0]);
}

TEST(GeneralizeDataset, ReducesKGap) {
  // Property from Fig. 4: generalization can only shrink (or keep) the
  // anonymization gap.
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{cell(0, 0, 0),
                                                cell(900, 0, 300)});
  fps.emplace_back(1u, std::vector<cdr::Sample>{cell(400, 0, 40),
                                                cell(1'300, 0, 350)});
  fps.emplace_back(2u, std::vector<cdr::Sample>{cell(3'000, 0, 100),
                                                cell(200, 0, 500)});
  const cdr::FingerprintDataset data{std::move(fps)};
  const auto raw = k_gap_values(data, 2);
  const auto coarse =
      k_gap_values(generalize_dataset(data, {5'000.0, 120.0}), 2);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_LE(coarse[i], raw[i] + 1e-12);
  }
}

// --- Parameterized sweep over the paper's Fig. 4 generalization ladder.

class GeneralizationLadder
    : public ::testing::TestWithParam<GeneralizationLevel> {};

TEST_P(GeneralizationLadder, OutputGranularityMatchesLevel) {
  const GeneralizationLevel level = GetParam();
  const cdr::Sample s = cell(12'345.0, 67'890.0, 1'234.0);
  const cdr::Sample g = generalize_sample(s, level);
  // The output is tile-aligned and spans a whole number of tiles (one tile
  // normally; two when the 100 m sample straddles a tile boundary).
  EXPECT_DOUBLE_EQ(std::fmod(g.sigma.x, level.spatial_m), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(g.sigma.dx, level.spatial_m), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(g.sigma.dy, level.spatial_m), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(g.tau.t, level.temporal_min), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(g.tau.dt, level.temporal_min), 0.0);
  EXPECT_GE(g.sigma.dx, level.spatial_m);
  EXPECT_LE(g.sigma.dx, 2.0 * level.spatial_m);
  EXPECT_GE(g.tau.dt, level.temporal_min);
  EXPECT_LE(g.tau.dt, 2.0 * level.temporal_min);
  // And it covers the original sample.
  EXPECT_LE(g.sigma.x, s.sigma.x);
  EXPECT_GE(g.sigma.x_end(), s.sigma.x_end());
  EXPECT_LE(g.tau.t, s.tau.t);
  EXPECT_GE(g.tau.t_end(), s.tau.t_end());
}

INSTANTIATE_TEST_SUITE_P(
    PaperLevels, GeneralizationLadder,
    ::testing::Values(GeneralizationLevel{100.0, 1.0},
                      GeneralizationLevel{1'000.0, 30.0},
                      GeneralizationLevel{2'500.0, 60.0},
                      GeneralizationLevel{5'000.0, 120.0},
                      GeneralizationLevel{10'000.0, 240.0},
                      GeneralizationLevel{20'000.0, 480.0}));

}  // namespace
}  // namespace glove::core
