#include "glove/core/accuracy.hpp"

#include <gtest/gtest.h>

namespace glove::core {
namespace {

cdr::Sample make_sample(double dx, double dt, double t = 0.0,
                        double x = 0.0) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, dx, 0.0, dx};
  s.tau = cdr::TemporalExtent{t, dt};
  return s;
}

cdr::FingerprintDataset mixed_dataset() {
  std::vector<cdr::Fingerprint> fps;
  // Group of 2 users with one tight and one loose sample.
  fps.emplace_back(std::vector<cdr::UserId>{0u, 1u},
                   std::vector<cdr::Sample>{make_sample(100.0, 1.0, 0.0),
                                            make_sample(2'000.0, 120.0, 50.0)});
  // Group of 1 user with a medium sample.
  fps.emplace_back(2u, std::vector<cdr::Sample>{make_sample(500.0, 30.0)});
  return cdr::FingerprintDataset{std::move(fps)};
}

TEST(MeasureAccuracy, ExtractsExtentsAndWeights) {
  const AccuracyObservations obs = measure_accuracy(mixed_dataset());
  ASSERT_EQ(obs.position_m.size(), 3u);
  EXPECT_DOUBLE_EQ(obs.position_m[0], 100.0);
  EXPECT_DOUBLE_EQ(obs.position_m[1], 2'000.0);
  EXPECT_DOUBLE_EQ(obs.time_min[1], 120.0);
  // Weights equal the group sizes.
  EXPECT_DOUBLE_EQ(obs.weight[0], 2.0);
  EXPECT_DOUBLE_EQ(obs.weight[2], 1.0);
}

TEST(MeasureAccuracy, EmptyDataset) {
  const AccuracyObservations obs = measure_accuracy({});
  EXPECT_TRUE(obs.empty());
  const AccuracySummary summary = summarize_accuracy(obs);
  EXPECT_DOUBLE_EQ(summary.mean_position_m, 0.0);
}

TEST(SummarizeAccuracy, WeightedMeanHandComputed) {
  const AccuracySummary summary =
      summarize_accuracy(measure_accuracy(mixed_dataset()));
  // Weighted mean: (100*2 + 2000*2 + 500*1) / 5 = 940.
  EXPECT_DOUBLE_EQ(summary.mean_position_m, 940.0);
  // Weighted mean time: (1*2 + 120*2 + 30*1) / 5 = 54.4.
  EXPECT_DOUBLE_EQ(summary.mean_time_min, 54.4);
}

TEST(SummarizeAccuracy, MedianUsesWeights) {
  const AccuracySummary summary =
      summarize_accuracy(measure_accuracy(mixed_dataset()));
  // Expanded sample: {100,100,500,2000,2000} -> median 500.
  EXPECT_DOUBLE_EQ(summary.median_position_m, 500.0);
}

TEST(AccuracyCdfs, MatchWeightedDistribution) {
  const AccuracyObservations obs = measure_accuracy(mixed_dataset());
  const auto pos = position_accuracy_cdf(obs);
  EXPECT_DOUBLE_EQ(pos.at(100.0), 0.4);   // 2 of 5 records
  EXPECT_DOUBLE_EQ(pos.at(500.0), 0.6);
  EXPECT_DOUBLE_EQ(pos.at(2'000.0), 1.0);
  const auto time = time_accuracy_cdf(obs);
  EXPECT_DOUBLE_EQ(time.at(1.0), 0.4);
  EXPECT_DOUBLE_EQ(time.at(30.0), 0.6);
}

TEST(CountUncovered, IdenticalDatasetsFullyCovered) {
  std::vector<cdr::Fingerprint> fps;
  fps.emplace_back(0u, std::vector<cdr::Sample>{make_sample(100.0, 1.0)});
  const cdr::FingerprintDataset data{std::move(fps)};
  EXPECT_EQ(count_uncovered_samples(data, data), 0u);
}

TEST(CountUncovered, DetectsMissingUser) {
  std::vector<cdr::Fingerprint> original;
  original.emplace_back(0u,
                        std::vector<cdr::Sample>{make_sample(100.0, 1.0),
                                                 make_sample(100.0, 1.0, 60)});
  std::vector<cdr::Fingerprint> published;  // user 0 absent
  published.emplace_back(1u,
                         std::vector<cdr::Sample>{make_sample(100.0, 1.0)});
  EXPECT_EQ(count_uncovered_samples(cdr::FingerprintDataset{original},
                                    cdr::FingerprintDataset{published}),
            2u);
}

TEST(CountUncovered, DetectsShrunkenCoverage) {
  std::vector<cdr::Fingerprint> original;
  original.emplace_back(
      0u, std::vector<cdr::Sample>{make_sample(100.0, 1.0, 0.0, 0.0),
                                   make_sample(100.0, 1.0, 0.0, 10'000.0)});
  // Published keeps only the first location.
  std::vector<cdr::Fingerprint> published;
  published.emplace_back(
      0u, std::vector<cdr::Sample>{make_sample(100.0, 1.0, 0.0, 0.0)});
  EXPECT_EQ(count_uncovered_samples(cdr::FingerprintDataset{original},
                                    cdr::FingerprintDataset{published}),
            1u);
}

TEST(CountUncovered, WiderPublishedSampleCovers) {
  std::vector<cdr::Fingerprint> original;
  original.emplace_back(
      0u, std::vector<cdr::Sample>{make_sample(100.0, 1.0, 10.0, 500.0)});
  // Published sample is a superset rectangle and interval.
  cdr::Sample wide;
  wide.sigma = cdr::SpatialExtent{0.0, 5'000.0, 0.0, 5'000.0};
  wide.tau = cdr::TemporalExtent{0.0, 60.0};
  std::vector<cdr::Fingerprint> published;
  published.emplace_back(0u, std::vector<cdr::Sample>{wide});
  EXPECT_EQ(count_uncovered_samples(cdr::FingerprintDataset{original},
                                    cdr::FingerprintDataset{published}),
            0u);
}

}  // namespace
}  // namespace glove::core
