#include "glove/attack/linkage.hpp"

#include <gtest/gtest.h>

#include "glove/core/glove.hpp"
#include "glove/synth/generator.hpp"

namespace glove::attack {
namespace {

cdr::Sample cell(double x, double y, double t) {
  cdr::Sample s;
  s.sigma = cdr::SpatialExtent{x, 100.0, y, 100.0};
  s.tau = cdr::TemporalExtent{t, 1.0};
  return s;
}

TEST(SampleMatches, SpatialContainmentAndOverlap) {
  const cdr::Sample s = cell(1'050, 2'050, 30);
  Observation obs;
  obs.x = 1'000;
  obs.y = 2'000;
  obs.size_m = 1'000;
  obs.time_known = false;
  EXPECT_TRUE(sample_matches(s, obs));
  obs.x = 5'000;
  EXPECT_FALSE(sample_matches(s, obs));
}

TEST(SampleMatches, TimeWindowRespected) {
  const cdr::Sample s = cell(0, 0, 90);
  Observation obs;
  obs.x = -100;
  obs.y = -100;
  obs.size_m = 1'000;
  obs.time_known = true;
  obs.t = 60;
  obs.dt = 60;
  EXPECT_TRUE(sample_matches(s, obs));  // 90 within [60, 120)
  obs.t = 120;
  EXPECT_FALSE(sample_matches(s, obs));
}

TEST(SampleMatches, GeneralizedSampleMatchesWiderWindow) {
  // A generalized (wide) published sample stays consistent with any
  // observation it covers — the mechanics that enlarge anonymity sets.
  cdr::Sample wide;
  wide.sigma = cdr::SpatialExtent{0, 10'000, 0, 10'000};
  wide.tau = cdr::TemporalExtent{0, 480};
  Observation obs;
  obs.x = 4'000;
  obs.y = 7'000;
  obs.size_m = 1'000;
  obs.t = 300;
  obs.dt = 60;
  EXPECT_TRUE(sample_matches(wide, obs));
}

TEST(RecordMatches, AllObservationsRequired) {
  const cdr::Fingerprint fp{0u, {cell(0, 0, 10), cell(5'000, 0, 600)}};
  Observation at_home;
  at_home.x = -500;
  at_home.y = -500;
  at_home.size_m = 1'000;
  at_home.time_known = false;
  Observation elsewhere = at_home;
  elsewhere.x = 50'000;
  EXPECT_TRUE(record_matches(fp, {at_home}));
  EXPECT_FALSE(record_matches(fp, {at_home, elsewhere}));
  EXPECT_TRUE(record_matches(fp, {}));  // vacuous knowledge matches all
}

cdr::FingerprintDataset two_distinct_users() {
  std::vector<cdr::Fingerprint> fps;
  // User 0 lives around (0,0); user 1 around (50km, 0).
  std::vector<cdr::Sample> u0;
  std::vector<cdr::Sample> u1;
  for (int d = 0; d < 5; ++d) {
    u0.push_back(cell(0, 0, d * 1'440 + 60));
    u0.push_back(cell(200, 0, d * 1'440 + 700));
    u1.push_back(cell(50'000, 0, d * 1'440 + 65));
    u1.push_back(cell(50'200, 0, d * 1'440 + 710));
  }
  fps.emplace_back(0u, std::move(u0));
  fps.emplace_back(1u, std::move(u1));
  return cdr::FingerprintDataset{std::move(fps)};
}

TEST(TopLocationsAttack, DistinctUsersAreUnique) {
  const cdr::FingerprintDataset data = two_distinct_users();
  const TopLocationsAttack attack{.top_n = 2, .tile_m = 1'000.0};
  const AttackReport report = attack.run(data, data);
  EXPECT_EQ(report.attacked, 2u);
  EXPECT_EQ(report.unique, 2u);
  EXPECT_DOUBLE_EQ(report.uniqueness(), 1.0);
}

TEST(TopLocationsAttack, KnowledgeIsTopRankedTiles) {
  std::vector<cdr::Sample> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(cell(0, 0, i * 100));
  for (int i = 0; i < 3; ++i) samples.push_back(cell(9'000, 0, i * 97 + 20));
  samples.push_back(cell(20'000, 0, 4'000));
  const cdr::Fingerprint fp{0u, std::move(samples)};
  const TopLocationsAttack attack{.top_n = 2, .tile_m = 1'000.0};
  const auto knowledge = attack.knowledge_for(fp);
  ASSERT_EQ(knowledge.size(), 2u);
  EXPECT_DOUBLE_EQ(knowledge[0].x, 0.0);     // 8 visits
  EXPECT_DOUBLE_EQ(knowledge[1].x, 9'000.0); // 3 visits
}

TEST(PointsAttack, KnowledgeComesFromOwnTrajectory) {
  const cdr::FingerprintDataset data = two_distinct_users();
  const PointsAttack attack{.points = 3, .tile_m = 1'000.0, .slot_min = 60.0};
  const auto knowledge = attack.knowledge_for(data[0], 0);
  ASSERT_EQ(knowledge.size(), 3u);
  // Every drawn observation must match the user's own record.
  EXPECT_TRUE(record_matches(data[0], knowledge));
  EXPECT_FALSE(record_matches(data[1], knowledge));
}

TEST(PointsAttack, DeterministicInSeed) {
  const cdr::FingerprintDataset data = two_distinct_users();
  const PointsAttack attack{.points = 2, .seed = 5};
  const auto a = attack.knowledge_for(data[0], 0);
  const auto b = attack.knowledge_for(data[0], 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
  }
}

TEST(Attacks, GloveOutputDefeatsRecordLinkage) {
  // The central guarantee: on a k-anonymized dataset, any record-linkage
  // attack yields anonymity sets of at least k users.
  synth::SynthConfig config = synth::civ_like(50, 77);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);

  core::GloveConfig glove_config;
  glove_config.k = 2;
  const core::GloveResult glove = core::anonymize(data, glove_config);

  const PointsAttack points{.points = 4};
  const AttackReport after = points.run(data, glove.anonymized);
  EXPECT_EQ(after.unique, 0u);
  EXPECT_EQ(after.below_k[0], 0u);  // nobody with anonymity set < 2
  EXPECT_GE(after.mean_candidates, 2.0);

  const TopLocationsAttack top{.top_n = 3};
  const AttackReport top_after = top.run(data, glove.anonymized);
  EXPECT_EQ(top_after.below_k[0], 0u);
}

TEST(Attacks, RawSyntheticCdrIsHighlyUnique) {
  // The paper's motivation (refs [5], [6]): a handful of points pins most
  // users in the raw data, and more knowledge pins strictly more.
  synth::SynthConfig config = synth::civ_like(60, 78);
  config.days = 3.0;
  const cdr::FingerprintDataset data = synth::generate_dataset(config);
  const AttackReport two = PointsAttack{.points = 2}.run(data, data);
  const AttackReport four = PointsAttack{.points = 4}.run(data, data);
  const AttackReport six = PointsAttack{.points = 6}.run(data, data);
  EXPECT_GT(four.uniqueness(), 0.6);
  EXPECT_GT(six.uniqueness(), four.uniqueness() - 0.05);
  EXPECT_GE(four.uniqueness(), two.uniqueness() - 0.05);
  EXPECT_GE(six.uniqueness(), 0.7);
}

}  // namespace
}  // namespace glove::attack
