// Wire-format guarantees of the process ShardExecutor protocol: every
// payload codec round-trips bit-exactly (doubles travel as IEEE-754
// patterns, so groups cannot drift across the process boundary), decoders
// reject malformed payloads loudly, and the framed io layer handles EOF,
// truncation, and corrupt length prefixes without misparsing.

#include "glove/shard/exec/proto.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/fixtures.hpp"
#include "glove/cdr/fingerprint.hpp"
#include "glove/core/glove.hpp"

namespace glove::shard::exec {
namespace {

core::GloveConfig sample_config() {
  core::GloveConfig glove;
  glove.k = 3;
  glove.limits.phi_max_sigma_m = 12'345.678;
  glove.limits.phi_max_tau_min = 481.25;
  glove.limits.w_sigma = 0.375;
  glove.limits.w_tau = 0.625;
  glove.suppression = core::SuppressionThresholds{15'000.5, 360.25};
  glove.reshape = false;
  glove.leftover_policy = core::LeftoverPolicy::kSuppress;
  return glove;
}

TEST(ExecProto, HelloRoundTripsEveryConfigField) {
  HelloRequest req;
  req.source_path = "/data/trace.glovebin";
  req.expected_fingerprints = 1'234'567;
  req.glove = sample_config();

  const HelloRequest back = decode_hello(encode_hello(req));
  EXPECT_EQ(back.source_path, req.source_path);
  EXPECT_EQ(back.expected_fingerprints, req.expected_fingerprints);
  EXPECT_EQ(back.glove.k, 3u);
  EXPECT_EQ(back.glove.limits.phi_max_sigma_m, 12'345.678);
  EXPECT_EQ(back.glove.limits.phi_max_tau_min, 481.25);
  EXPECT_EQ(back.glove.limits.w_sigma, 0.375);
  EXPECT_EQ(back.glove.limits.w_tau, 0.625);
  ASSERT_TRUE(back.glove.suppression.has_value());
  EXPECT_EQ(back.glove.suppression->max_spatial_extent_m, 15'000.5);
  EXPECT_EQ(back.glove.suppression->max_temporal_extent_min, 360.25);
  EXPECT_FALSE(back.glove.reshape);
  EXPECT_EQ(back.glove.leftover_policy, core::LeftoverPolicy::kSuppress);
}

TEST(ExecProto, HelloRoundTripsWithoutSuppression) {
  HelloRequest req;
  req.source_path = "x.csv";
  req.glove.suppression.reset();
  const HelloRequest back = decode_hello(encode_hello(req));
  EXPECT_FALSE(back.glove.suppression.has_value());
  EXPECT_TRUE(back.glove.reshape);
}

TEST(ExecProto, RunShardRoundTripsMemberOrder) {
  RunShardRequest req;
  req.shard = 42;
  req.member_ids = {7, 3, 99, 0, 1'000'000};
  const RunShardRequest back = decode_run_shard(encode_run_shard(req));
  EXPECT_EQ(back.shard, 42u);
  EXPECT_EQ(back.member_ids, req.member_ids);
}

TEST(ExecProto, ShardDoneRoundTripsGroupsBitExactly) {
  ShardDoneReply reply;
  reply.shard = 5;
  reply.merges = 11;
  reply.deleted_samples = 2;
  reply.discarded_fingerprints = 1;
  reply.stretch_evaluations = 1'000'000'007;
  reply.init_seconds = 0.125;
  reply.merge_seconds = 2.5;
  reply.total_seconds = 3.0625;
  // Samples with non-representable decimals: the bit patterns must come
  // back exactly, and time-tied samples must keep their stored order.
  reply.groups.push_back(cdr::Fingerprint::from_time_sorted(
      {4, 9},
      {test::box(0.1, 0.2, 0.3, 0.4, 10.0, 5.0),
       test::box(7.7, 0.1, -3.3, 0.6, 10.0, 5.0)}));
  reply.groups.push_back(cdr::Fingerprint::from_time_sorted(
      {12}, {test::box(1e9, 1e-9, -1e9, 0.0, 0.0, 0.0)}));
  reply.counter_deltas = {{"core.heap.popped", 17},
                          {"core.heap.seeded", 123'456'789'012ull}};

  const ShardDoneReply back = decode_shard_done(encode_shard_done(reply));
  EXPECT_EQ(back.shard, 5u);
  EXPECT_EQ(back.merges, 11u);
  EXPECT_EQ(back.deleted_samples, 2u);
  EXPECT_EQ(back.discarded_fingerprints, 1u);
  EXPECT_EQ(back.stretch_evaluations, 1'000'000'007u);
  EXPECT_EQ(back.init_seconds, 0.125);
  EXPECT_EQ(back.merge_seconds, 2.5);
  EXPECT_EQ(back.total_seconds, 3.0625);
  ASSERT_EQ(back.groups.size(), 2u);
  for (std::size_t g = 0; g < back.groups.size(); ++g) {
    ASSERT_EQ(back.groups[g].members().size(),
              reply.groups[g].members().size());
    for (std::size_t m = 0; m < back.groups[g].members().size(); ++m) {
      EXPECT_EQ(back.groups[g].members()[m], reply.groups[g].members()[m]);
    }
    ASSERT_EQ(back.groups[g].size(), reply.groups[g].size());
    for (std::size_t s = 0; s < back.groups[g].size(); ++s) {
      EXPECT_EQ(back.groups[g].samples()[s], reply.groups[g].samples()[s])
          << "group " << g << " sample " << s;
    }
  }
  EXPECT_EQ(back.counter_deltas, reply.counter_deltas);
}

TEST(ExecProto, ErrorRoundTripsMessage) {
  const std::string message = "worker re-read yielded nothing\nstderr tail";
  EXPECT_EQ(decode_error(encode_error(message)), message);
}

TEST(ExecProto, DecodersRejectTruncatedAndTrailingBytes) {
  RunShardRequest req;
  req.shard = 1;
  req.member_ids = {1, 2, 3};
  std::vector<std::uint8_t> payload = encode_run_shard(req);

  std::vector<std::uint8_t> truncated{payload.begin(), payload.end() - 1};
  EXPECT_THROW((void)decode_run_shard(truncated), std::runtime_error);

  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_run_shard(trailing), std::runtime_error);

  EXPECT_THROW((void)decode_hello({0x01}), std::runtime_error);
  EXPECT_THROW((void)decode_shard_done({}), std::runtime_error);
}

TEST(ExecProto, HelloRejectsWrongProtocolVersion) {
  HelloRequest req;
  req.source_path = "x.csv";
  std::vector<std::uint8_t> payload = encode_hello(req);
  // The version is the leading little-endian u32; bump it.
  payload[0] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_THROW((void)decode_hello(payload), std::runtime_error);
}

#if defined(__unix__) || defined(__APPLE__)

TEST(ExecProto, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::vector<std::uint8_t> payload{1, 2, 3, 250, 255};
  write_frame(fds[1], FrameType::kRunShard, payload);
  write_frame(fds[1], FrameType::kShutdown, {});
  ::close(fds[1]);

  Frame frame;
  ASSERT_TRUE(read_frame(fds[0], frame));
  EXPECT_EQ(frame.type, FrameType::kRunShard);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_TRUE(read_frame(fds[0], frame));
  EXPECT_EQ(frame.type, FrameType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_FALSE(read_frame(fds[0], frame));  // clean EOF at a boundary
  ::close(fds[0]);
}

TEST(ExecProto, ReadFrameThrowsOnTruncatedFrame) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A header promising 100 payload bytes, then EOF mid-frame.
  const std::uint8_t header[5] = {100, 0, 0, 0,
                                  static_cast<std::uint8_t>(FrameType::kError)};
  ASSERT_EQ(::write(fds[1], header, sizeof header), 5);
  ::close(fds[1]);
  Frame frame;
  EXPECT_THROW((void)read_frame(fds[0], frame), std::runtime_error);
  ::close(fds[0]);
}

TEST(ExecProto, ReadFrameRejectsOversizedLengthPrefix) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // 0xFFFFFFFF length: must fail fast, not attempt a 4 GiB allocation.
  const std::uint8_t header[5] = {0xFF, 0xFF, 0xFF, 0xFF,
                                  static_cast<std::uint8_t>(FrameType::kHello)};
  ASSERT_EQ(::write(fds[1], header, sizeof header), 5);
  Frame frame;
  EXPECT_THROW((void)read_frame(fds[0], frame), std::runtime_error);
  ::close(fds[1]);
  ::close(fds[0]);
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace glove::shard::exec
