// End-to-end guarantees of the pluggable shard-execution boundary: the
// process executor (forked glove_shard_worker daemons re-reading shard
// slices from the shared file) produces byte-identical output to the
// in-process thread pool across worker counts and both dataset formats,
// surfaces worker crashes as typed errors carrying the worker's stderr
// tail (no hang, no orphan processes, no leaked spill files), and rejects
// configurations it cannot serve (in-memory sources).
//
// The worker binary path arrives via the GLOVE_SHARD_WORKER_BIN compile
// definition, so the suite exercises the same discovery override
// operators use.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <unistd.h>
#endif

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/api/engine.hpp"
#include "glove/api/sink.hpp"
#include "glove/api/source.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"
#include "glove/shard/config.hpp"

namespace glove::api {
namespace {

namespace fs = std::filesystem;

RunConfig sharded_config(shard::ExecutorKind executor, std::size_t workers) {
  RunConfig config;
  config.strategy = kStrategySharded;
  config.k = 2;
  config.sharded.tile_size_m = 5'000.0;
  config.sharded.max_shard_users = 16;
  config.sharded.border = shard::BorderPolicy::kHalo;
  config.sharded.executor = executor;
  config.sharded.exec_workers = workers;
  config.sharded.worker_binary = GLOVE_SHARD_WORKER_BIN;
  return config;
}

/// Streams `path` through the Engine into a MemorySink; returns the CSV
/// spelling of the output under a fixed name so runs over differently
/// named inputs stay comparable.
std::string run_to_csv(const Engine& engine, const RunConfig& config,
                       const std::string& path,
                       RunReport* report_out = nullptr) {
  const auto source = open_dataset_source(path);
  MemorySink sink;
  auto result = engine.run(*source, sink, config);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  if (!result.ok()) return {};
  if (report_out != nullptr) *report_out = std::move(result).value();
  cdr::FingerprintDataset out = std::move(sink).take_dataset();
  out.set_name("parity");
  return test::dataset_to_csv(out);
}

/// Stderr spill files the coordinator leaves behind would name this
/// process's pid; a clean teardown removes every one.
std::size_t leaked_spill_files() {
  std::size_t count = 0;
#if defined(__unix__)
  const std::string prefix =
      "glove_shard_worker-" + std::to_string(::getpid()) + "-";
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++count;
  }
#endif
  return count;
}

/// Live child processes of this test (Linux: scan /proc for our ppid) —
/// zero once every worker daemon has been reaped.
std::size_t live_child_processes() {
  std::size_t count = 0;
#if defined(__linux__)
  for (const auto& entry : fs::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.find_first_not_of("0123456789") != std::string::npos) continue;
    std::ifstream stat{entry.path() / "stat"};
    std::string token;
    // Fields: pid (comm) state ppid ...; comm may hold spaces but the
    // worker's never does.
    long ppid = -1;
    for (int i = 0; i < 4 && stat >> token; ++i) {
      if (i == 3) ppid = std::atol(token.c_str());
    }
    if (ppid == static_cast<long>(::getpid())) ++count;
  }
#endif
  return count;
}

TEST(ShardExecutor, ProcessMatchesInProcessAcrossWorkersAndFormats) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  const std::string csv = dir.file("data.csv");
  const std::string bin = dir.file("data.glovebin");
  cdr::write_dataset_file(csv, data);
  cdr::write_dataset_glovebin_file(bin, data, /*block_fingerprints=*/8);

  const Engine engine;
  for (const std::string& input : {csv, bin}) {
    const std::string reference = run_to_csv(
        engine, sharded_config(shard::ExecutorKind::kInProcess, 0), input);
    ASSERT_FALSE(reference.empty());
    for (const std::size_t workers : {1u, 2u, 4u}) {
      RunReport report;
      const std::string actual = run_to_csv(
          engine, sharded_config(shard::ExecutorKind::kProcess, workers),
          input, &report);
      const std::string label =
          fs::path(input).extension().string() + " workers=" +
          std::to_string(workers);
      EXPECT_EQ(actual, reference) << label;
      EXPECT_EQ(report.exec_kind, "process") << label;
      EXPECT_EQ(report.exec_workers, workers) << label;
      // Deterministic round-robin accounting: every job, fingerprint and
      // group is attributed to exactly one worker.
      ASSERT_EQ(report.exec_worker_stats.size(), workers) << label;
      std::uint64_t fingerprints = 0;
      std::uint64_t groups = 0;
      for (const ExecWorkerRow& row : report.exec_worker_stats) {
        fingerprints += row.fingerprints;
        groups += row.groups;
      }
      std::uint64_t shard_inputs = 0;
      std::uint64_t shard_groups = 0;
      for (const ShardTimingRow& row : report.shard_timings) {
        shard_inputs += row.input_fingerprints;
        shard_groups += row.output_groups;
      }
      EXPECT_EQ(fingerprints, shard_inputs) << label;
      EXPECT_EQ(groups, shard_groups) << label;
    }
  }
  EXPECT_EQ(live_child_processes(), 0u);
  EXPECT_EQ(leaked_spill_files(), 0u);
}

TEST(ShardExecutor, InProcessReportsItsKindInTheRunReport) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(30);
  const std::string csv = dir.file("data.csv");
  cdr::write_dataset_file(csv, data);

  const Engine engine;
  RunReport report;
  (void)run_to_csv(engine, sharded_config(shard::ExecutorKind::kInProcess, 0),
                   csv, &report);
  EXPECT_EQ(report.exec_kind, "inprocess");
  EXPECT_GE(report.exec_workers, 1u);
  EXPECT_TRUE(report.exec_worker_stats.empty());
}

TEST(ShardExecutor, ProcessObsCountersFoldIntoTheCoordinatorReport) {
  // The core.heap.* counters tick inside anonymize_pruned — in process
  // mode that is the *worker's* address space, so their presence in the
  // coordinator's report proves the delta fold-back works.
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  const std::string csv = dir.file("data.csv");
  cdr::write_dataset_file(csv, data);

  const Engine engine;
  RunReport in_proc;
  RunReport proc;
  (void)run_to_csv(engine, sharded_config(shard::ExecutorKind::kInProcess, 0),
                   csv, &in_proc);
  (void)run_to_csv(engine, sharded_config(shard::ExecutorKind::kProcess, 2),
                   csv, &proc);
  const auto counter = [](const RunReport& report, const std::string& name) {
    for (const auto& [key, value] : report.obs_counters) {
      if (key == name) return value;
    }
    return std::uint64_t{0};
  };
  for (const char* name :
       {"core.heap.seeded", "core.heap.popped", "stream.shards_run"}) {
    EXPECT_GT(counter(proc, name), 0u) << name;
    EXPECT_EQ(counter(proc, name), counter(in_proc, name)) << name;
  }
  EXPECT_GT(counter(proc, "exec.workers_spawned"), 0u);
  EXPECT_GT(counter(proc, "exec.jobs_dispatched"), 0u);
}

TEST(ShardExecutor, WorkerCrashSurfacesTypedErrorWithStderrTail) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  const std::string csv = dir.file("data.csv");
  cdr::write_dataset_file(csv, data);

  ::setenv("GLOVE_SHARD_WORKER_FAULT", "crash-after-jobs=0", 1);
  const Engine engine;
  const auto source = open_dataset_source(csv);
  MemorySink sink;
  const auto result = engine.run(
      *source, sink, sharded_config(shard::ExecutorKind::kProcess, 2));
  ::unsetenv("GLOVE_SHARD_WORKER_FAULT");

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInternal);
  // The error carries the crashed worker's stderr tail, so the fault
  // marker the worker printed before dying must be quoted verbatim.
  EXPECT_NE(result.error().message.find("fault injection"), std::string::npos)
      << result.error().message;
  // Clean teardown despite the crash: every daemon reaped, every stderr
  // spill file unlinked.
  EXPECT_EQ(live_child_processes(), 0u);
  EXPECT_EQ(leaked_spill_files(), 0u);
}

TEST(ShardExecutor, ProcessExecutorRejectsInMemorySources) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(30);
  const Engine engine;
  MemorySource source{data};
  MemorySink sink;
  const auto result = engine.run(
      source, sink, sharded_config(shard::ExecutorKind::kProcess, 2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidConfig);
  EXPECT_NE(result.error().message.find("file-backed"), std::string::npos)
      << result.error().message;
}

TEST(ShardExecutor, MissingWorkerBinaryFailsFast) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(30);
  const std::string csv = dir.file("data.csv");
  cdr::write_dataset_file(csv, data);

  RunConfig config = sharded_config(shard::ExecutorKind::kProcess, 1);
  config.sharded.worker_binary = dir.file("no_such_worker");
  const Engine engine;
  const auto source = open_dataset_source(csv);
  MemorySink sink;
  const auto result = engine.run(*source, sink, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidConfig);
}

}  // namespace
}  // namespace glove::api
