// Strategy registry: the six built-ins are registered, lookups work, and
// external strategies (the drop-in point for future distributed/streaming
// backends) can be added or replace built-ins without touching callers.

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.hpp"
#include "glove/api/engine.hpp"

namespace glove::api {
namespace {

TEST(Registry, BuiltinStrategiesAreRegistered) {
  const Engine engine;
  const std::vector<std::string> names = engine.strategies();
  const std::vector<std::string> expected{"chunked", "full", "incremental",
                                          "pruned-kgap", "sharded",
                                          "w4m-baseline"};
  EXPECT_EQ(names, expected);  // strategies() returns sorted names
  for (const std::string& name : expected) {
    const Anonymizer* strategy = engine.find(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
    EXPECT_FALSE(strategy->description().empty()) << name;
  }
  EXPECT_EQ(engine.find("nope"), nullptr);
}

/// A minimal external backend: publishes the input unchanged (only valid
/// for already-anonymized data, but enough to prove the plug-in seam).
class IdentityStrategy final : public Anonymizer {
 public:
  std::string_view name() const noexcept override { return "identity"; }
  std::string_view description() const noexcept override {
    return "returns the input dataset unchanged";
  }
  StrategyOutcome run(const cdr::FingerprintDataset& data, const RunConfig&,
                      const RunContext& context) const override {
    context.hooks.report(1, 1);
    StrategyOutcome outcome;
    outcome.anonymized = cdr::FingerprintDataset{
        {data.fingerprints().begin(), data.fingerprints().end()},
        data.name()};
    outcome.counters.input_users = data.total_users();
    outcome.counters.output_groups = data.size();
    return outcome;
  }
};

TEST(Registry, ExternalStrategyRunsThroughTheSameEntryPoint) {
  Engine engine;
  engine.register_strategy(std::make_unique<IdentityStrategy>());
  ASSERT_NE(engine.find("identity"), nullptr);

  RunConfig config;
  config.strategy = "identity";
  const cdr::FingerprintDataset data = test::paired_dataset();
  const auto result = engine.run(data, config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().anonymized.size(), data.size());
  EXPECT_EQ(result.value().strategy, "identity");
}

TEST(Registry, RegisteringExistingNameReplacesTheStrategy) {
  Engine engine;
  const std::size_t before = engine.strategies().size();

  // Replace "full" with an identity backend under the same name.
  struct NamedFull final : Anonymizer {
    std::string_view name() const noexcept override { return "full"; }
    std::string_view description() const noexcept override {
      return "replacement";
    }
    StrategyOutcome run(const cdr::FingerprintDataset& data, const RunConfig&,
                        const RunContext&) const override {
      StrategyOutcome outcome;
      outcome.anonymized = cdr::FingerprintDataset{
          {data.fingerprints().begin(), data.fingerprints().end()},
          data.name()};
      return outcome;
    }
  };
  engine.register_strategy(std::make_unique<NamedFull>());
  EXPECT_EQ(engine.strategies().size(), before);
  EXPECT_EQ(engine.find("full")->description(), "replacement");
}

}  // namespace
}  // namespace glove::api
