// RunReport serialization: a golden file locks the JSON schema (key set,
// nesting, ordering), and the CSV row must stay aligned with its header.

#include "glove/api/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/api/engine.hpp"
#include "glove/util/csv.hpp"

namespace glove::api {
namespace {

/// A real run with the timing and memory fields zeroed, so serialization
/// is deterministic and golden-comparable.
RunReport deterministic_report() {
  const Engine engine;
  RunConfig config;
  config.k = 2;
  config.suppression = core::SuppressionThresholds{15'000.0, 360.0};
  auto result = engine.run(test::paired_dataset(), config);
  EXPECT_TRUE(result.ok());
  RunReport report = std::move(result).value();
  report.timings = RunTimings{};
  report.peak_rss_bytes = 0;
  return report;
}

TEST(RunReport, JsonSchemaMatchesGoldenFile) {
  test::expect_matches_golden("run_report.json",
                              to_json(deterministic_report()));
}

TEST(RunReport, CsvRowAlignsWithHeader) {
  const RunReport report = deterministic_report();
  const auto header = util::split_csv_line(report_csv_header());
  const std::string row_text = to_csv_row(report);
  const auto row = util::split_csv_line(row_text);
  ASSERT_EQ(header.size(), row.size());
  EXPECT_EQ(row[0], "full");
  EXPECT_EQ(row[2], "2");  // k
}

TEST(RunReport, WriteReportFilePicksFormatByExtension) {
  const RunReport report = deterministic_report();
  test::TempDir dir;

  const std::string json_path = dir.file("report.json");
  write_report_file(json_path, report);
  std::ifstream json_in{json_path};
  std::stringstream json_text;
  json_text << json_in.rdbuf();
  EXPECT_NE(json_text.str().find("\"schema\": \"glove.run_report.v7\""),
            std::string::npos);

  const std::string csv_path = dir.file("report.csv");
  write_report_file(csv_path, report);
  std::ifstream csv_in{csv_path};
  std::string header_line;
  std::getline(csv_in, header_line);
  EXPECT_EQ(header_line, report_csv_header());
}

TEST(RunReport, ExtraMetricsSerializeUnderMetrics) {
  RunReport report = deterministic_report();
  report.extra_metrics = {{"clusters", 4.0}, {"mean_position_error_m", 12.5}};
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"clusters\": 4.0"), std::string::npos);
  EXPECT_NE(json.find("\"mean_position_error_m\": 12.5"), std::string::npos);
}

}  // namespace
}  // namespace glove::api
