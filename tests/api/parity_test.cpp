// Engine/free-function parity: every built-in strategy must produce
// byte-identical anonymized output to the pre-Engine free function it
// wraps, on the shared fixture datasets (including the checked-in golden
// pairing dataset).  This locks the redesign to "API change only".

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/api/engine.hpp"
#include "glove/cdr/io.hpp"
#include "glove/baseline/w4m.hpp"
#include "glove/core/glove.hpp"
#include "glove/core/incremental.hpp"
#include "glove/core/scalability.hpp"

namespace glove::api {
namespace {

std::string engine_csv(const Engine& engine,
                       const cdr::FingerprintDataset& data,
                       const RunConfig& config) {
  const auto result = engine.run(data, config);
  EXPECT_TRUE(result.ok()) << config.strategy << ": "
                           << (result.ok() ? "" : result.error().message);
  return test::dataset_to_csv(result.value().anonymized);
}

class ParityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParityTest, FullMatchesFreeFunction) {
  const Engine engine;
  const std::uint32_t k = GetParam();
  for (const auto& data :
       {test::paired_dataset(), test::small_synth_dataset(30)}) {
    RunConfig config;
    config.k = k;
    core::GloveConfig legacy;
    legacy.k = k;
    EXPECT_EQ(engine_csv(engine, data, config),
              test::dataset_to_csv(core::anonymize(data, legacy).anonymized));
  }
}

TEST_P(ParityTest, PrunedMatchesFullFreeFunction) {
  // pruned-kgap is *exact*: the lazy lower-bound initialization must
  // reproduce the all-exact heap's output byte for byte.
  const Engine engine;
  const std::uint32_t k = GetParam();
  for (const auto& data :
       {test::paired_dataset(), test::small_synth_dataset(40),
        test::random_dataset(25, 7)}) {
    RunConfig config;
    config.strategy = kStrategyPrunedKGap;
    config.k = k;
    core::GloveConfig legacy;
    legacy.k = k;
    EXPECT_EQ(engine_csv(engine, data, config),
              test::dataset_to_csv(core::anonymize(data, legacy).anonymized));
  }
}

TEST_P(ParityTest, ChunkedMatchesFreeFunction) {
  const Engine engine;
  const std::uint32_t k = GetParam();
  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  RunConfig config;
  config.strategy = kStrategyChunked;
  config.k = k;
  config.chunked.chunk_size = 16;
  core::ChunkedConfig legacy;
  legacy.glove.k = k;
  legacy.chunk_size = 16;
  EXPECT_EQ(
      engine_csv(engine, data, config),
      test::dataset_to_csv(core::anonymize_chunked(data, legacy).anonymized));
}

TEST_P(ParityTest, W4MMatchesFreeFunction) {
  const Engine engine;
  const std::uint32_t k = GetParam();
  const cdr::FingerprintDataset data = test::small_synth_dataset(30);
  RunConfig config;
  config.strategy = kStrategyW4M;
  config.k = k;
  baseline::W4MConfig legacy;
  legacy.k = k;
  EXPECT_EQ(
      engine_csv(engine, data, config),
      test::dataset_to_csv(baseline::anonymize_w4m(data, legacy).anonymized));
}

TEST_P(ParityTest, IncrementalMatchesFreeFunction) {
  const Engine engine;
  const std::uint32_t k = GetParam();
  core::GloveConfig legacy;
  legacy.k = k;
  const core::GloveResult published =
      core::anonymize(test::small_synth_dataset(24), legacy);
  // Newcomer ids offset past the base release's: anonymize_update rejects
  // ids that appear in both inputs.
  const cdr::FingerprintDataset newcomers =
      test::random_dataset(8, 3, 6, /*first_user=*/10'000);

  RunConfig config;
  config.strategy = kStrategyIncremental;
  config.k = k;
  config.incremental.published = &published.anonymized;
  EXPECT_EQ(engine_csv(engine, newcomers, config),
            test::dataset_to_csv(
                core::anonymize_update(published.anonymized, newcomers, legacy)
                    .anonymized));
}

INSTANTIATE_TEST_SUITE_P(KLevels, ParityTest, ::testing::Values(2u, 3u));

TEST(Parity, StreamingBoundaryMatchesLegacyOverloadForEveryStrategy) {
  // File-to-file runs must publish byte-identical datasets to the legacy
  // dataset overload fed the same parsed input — for the sharded strategy
  // that locks the whole two-pass streaming pipeline to the in-memory
  // one, for the rest the collect-then-run fallback.
  const Engine engine;
  const test::TempDir dir;
  const std::string in_path = dir.file("in.csv");
  cdr::write_dataset_file(in_path, test::small_synth_dataset(50));
  cdr::FingerprintDataset parsed = cdr::read_dataset_file(in_path);
  parsed.set_name(in_path);  // a CsvFileSource names its dataset by path

  for (const char* strategy :
       {"full", "chunked", "pruned-kgap", "sharded", "w4m-baseline"}) {
    RunConfig config;
    config.strategy = strategy;
    config.k = 2;
    config.chunked.chunk_size = 16;
    config.sharded.tile_size_m = 5'000.0;
    config.sharded.max_shard_users = 16;

    const auto legacy = engine.run(parsed, config);
    ASSERT_TRUE(legacy.ok()) << strategy << ": " << legacy.error().message;

    const std::string out_path =
        dir.file(std::string{"out-"} + strategy + ".csv");
    CsvFileSource source{in_path};
    CsvFileSink sink{out_path};
    const auto streamed = engine.run(source, sink, config);
    ASSERT_TRUE(streamed.ok()) << strategy << ": "
                               << streamed.error().message;

    std::ifstream published{out_path};
    std::stringstream bytes;
    bytes << published.rdbuf();
    EXPECT_EQ(bytes.str(), test::dataset_to_csv(legacy.value().anonymized))
        << strategy;
  }
}

TEST(Parity, FullMatchesOnCheckedInGoldenDataset) {
  // The checked-in golden file locks core::anonymize's output on the
  // paired dataset at k=2; the Engine's "full" strategy must match the
  // same bytes.
  const Engine engine;
  RunConfig config;
  config.k = 2;
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  test::expect_matches_golden("glove_paired_k2.csv",
                              test::dataset_to_csv(result.value().anonymized));
}

}  // namespace
}  // namespace glove::api
