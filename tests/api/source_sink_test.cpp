// The streaming run boundary: DatasetSource/DatasetSink contracts
// (iteration, rewind — including after EOF —, error context, byte parity
// of the file sink with the bulk writer) and the Engine's streaming
// overload (collect-then-run fallback, sharded streaming passes, typed
// errors on empty/short sources).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/api/engine.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"

namespace glove::api {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<cdr::Fingerprint> drain(DatasetSource& source) {
  std::vector<cdr::Fingerprint> out;
  cdr::Fingerprint fp;
  while (source.next(fp)) out.push_back(std::move(fp));
  return out;
}

TEST(MemorySource, IteratesRewindsAndReportsIdentity) {
  const cdr::FingerprintDataset data = test::grouped_io_dataset();
  MemorySource source{data};
  EXPECT_EQ(source.kind(), "memory");
  EXPECT_EQ(source.name(), "io-test");
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), data.size());

  EXPECT_EQ(drain(source).size(), data.size());
  // Rewind after EOF restarts from the first fingerprint.
  source.rewind();
  const auto again = drain(source);
  ASSERT_EQ(again.size(), data.size());
  EXPECT_EQ(again[0].members()[0], data[0].members()[0]);
}

TEST(CsvFileSource, StreamsAFileAndRewindsAfterEof) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(12);
  const std::string path = dir.file("data.csv");
  cdr::write_dataset_file(path, data);

  CsvFileSource source{path};
  EXPECT_EQ(source.kind(), "csv-file");
  EXPECT_EQ(source.name(), path);
  EXPECT_FALSE(source.size_hint().has_value());
  EXPECT_EQ(drain(source).size(), data.size());

  // A drained file source must restart cleanly — the streaming sharded
  // backend rewinds once per shard batch.
  source.rewind();
  EXPECT_EQ(drain(source).size(), data.size());
  source.rewind();
  cdr::Fingerprint fp;
  ASSERT_TRUE(source.next(fp));
  EXPECT_EQ(fp.members()[0], data[0].members()[0]);
}

TEST(CsvFileSource, MissingFileThrowsWithPath) {
  try {
    CsvFileSource source{"/nonexistent/stream.csv"};
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("/nonexistent/stream.csv"),
              std::string::npos);
  }
}

TEST(CsvFileSource, MalformedRowReportsPathAndLine) {
  const test::TempDir dir;
  const std::string path = dir.file("bad.csv");
  std::ofstream{path} << "7,0,100,0,100,10,1,1\n7,0,100,oops,100,20,1,1\n";

  CsvFileSource source{path};
  cdr::Fingerprint fp;
  try {
    while (source.next(fp)) {
    }
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path), std::string::npos) << message;
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }
}

TEST(Collect, MaterializesRemainderWithSourceName) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(8);
  MemorySource source{data};
  const cdr::FingerprintDataset collected = collect(source);
  EXPECT_EQ(collected.name(), data.name());
  EXPECT_EQ(test::dataset_to_csv(collected), test::dataset_to_csv(data));
}

TEST(MemorySink, CollectsGroupsUnderTheAnnouncedName) {
  MemorySink sink;
  EXPECT_EQ(sink.kind(), "memory");
  sink.begin("streamed");
  const cdr::FingerprintDataset data = test::grouped_io_dataset();
  for (const cdr::Fingerprint& fp : data.fingerprints()) sink.write(fp);
  sink.finish();
  EXPECT_EQ(sink.groups_written(), data.size());
  const cdr::FingerprintDataset out = std::move(sink).take_dataset();
  EXPECT_EQ(out.name(), "streamed");
  EXPECT_EQ(out.size(), data.size());
}

TEST(CsvFileSink, MatchesBulkWriterByteForByte) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(10);
  const std::string path = dir.file("sink.csv");
  {
    CsvFileSink sink{path};
    EXPECT_EQ(sink.kind(), "csv-file");
    sink.begin(data.name());
    for (const cdr::Fingerprint& fp : data.fingerprints()) sink.write(fp);
    sink.finish();
  }
  EXPECT_EQ(read_file(path), test::dataset_to_csv(data));
}

TEST(EngineStreaming, CollectFallbackRunsNonStreamingStrategiesFileToFile) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(30);
  const std::string in_path = dir.file("in.csv");
  const std::string out_path = dir.file("out.csv");
  cdr::write_dataset_file(in_path, data);

  const Engine engine;
  RunConfig config;  // "full": no streaming support -> collect fallback
  config.k = 2;
  CsvFileSource source{in_path};
  CsvFileSink sink{out_path};
  const auto result = engine.run(source, sink, config);
  ASSERT_TRUE(result.ok()) << result.error().message;

  const RunReport& report = result.value();
  EXPECT_EQ(report.source_kind, "csv-file");
  EXPECT_EQ(report.sink_kind, "csv-file");
  // Collect-then-run streams the source exactly once.
  ASSERT_EQ(report.pass_fingerprints.size(), 1u);
  EXPECT_EQ(report.pass_fingerprints[0], data.size());
  EXPECT_TRUE(report.anonymized.empty());  // the sink owns the output
  EXPECT_EQ(sink.groups_written(), report.counters.output_groups);
  EXPECT_GT(report.peak_rss_bytes, 0u);

  const cdr::FingerprintDataset published = cdr::read_dataset_file(out_path);
  EXPECT_TRUE(core::is_k_anonymous(published, 2));
}

TEST(EngineStreaming, ShardedStreamsInMultiplePassesAndStaysKAnonymous) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  const std::string in_path = dir.file("in.csv");
  const std::string out_path = dir.file("out.csv");
  cdr::write_dataset_file(in_path, data);

  const Engine engine;
  RunConfig config;
  config.strategy = kStrategySharded;
  config.k = 2;
  config.sharded.tile_size_m = 5'000.0;
  config.sharded.max_shard_users = 16;
  config.sharded.workers = 1;  // small batch budget -> several passes
  CsvFileSource source{in_path};
  CsvFileSink sink{out_path};
  const auto result = engine.run(source, sink, config);
  ASSERT_TRUE(result.ok()) << result.error().message;

  const RunReport& report = result.value();
  // Pass 0 is the planning scan; at least one batch pass follows, each
  // reading the whole source.
  ASSERT_GE(report.pass_fingerprints.size(), 3u);
  for (const std::uint64_t count : report.pass_fingerprints) {
    EXPECT_EQ(count, data.size());
  }
  EXPECT_EQ(report.counters.input_users, data.size());
  EXPECT_TRUE(
      core::is_k_anonymous(cdr::read_dataset_file(out_path), 2));
}

TEST(EngineStreaming, EmptySourceIsInvalidDataset) {
  const test::TempDir dir;
  const std::string in_path = dir.file("empty.csv");
  std::ofstream{in_path} << "# just a comment\n";

  const Engine engine;
  for (const char* strategy : {"full", "sharded"}) {
    RunConfig config;
    config.strategy = strategy;
    CsvFileSource source{in_path};
    MemorySink sink;
    const auto result = engine.run(source, sink, config);
    ASSERT_FALSE(result.ok()) << strategy;
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidDataset) << strategy;
  }
}

TEST(EngineStreaming, SourceShorterThanKIsInvalidDataset) {
  const cdr::FingerprintDataset data = test::small_synth_dataset(3);
  const Engine engine;
  RunConfig config;
  config.strategy = kStrategySharded;
  config.k = 100;
  MemorySource source{data};
  MemorySink sink;
  const auto result = engine.run(source, sink, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidDataset);
}

TEST(EngineStreaming, LegacyOverloadMatchesStreamingBoundary) {
  // The dataset-in/dataset-out overload is a MemorySource/MemorySink
  // wrapper; both spellings must produce identical bytes and io echoes.
  const cdr::FingerprintDataset data = test::small_synth_dataset(40);
  const Engine engine;
  for (const char* strategy : {"full", "sharded"}) {
    RunConfig config;
    config.strategy = strategy;
    config.k = 2;
    config.sharded.tile_size_m = 5'000.0;
    config.sharded.max_shard_users = 16;

    const auto legacy = engine.run(data, config);
    ASSERT_TRUE(legacy.ok()) << strategy << ": " << legacy.error().message;

    MemorySource source{data};
    MemorySink sink;
    const auto streamed = engine.run(source, sink, config);
    ASSERT_TRUE(streamed.ok()) << strategy;
    EXPECT_EQ(test::dataset_to_csv(std::move(sink).take_dataset()),
              test::dataset_to_csv(legacy.value().anonymized))
        << strategy;
    EXPECT_EQ(legacy.value().source_kind, "memory");
    EXPECT_EQ(legacy.value().sink_kind, "memory");
    EXPECT_EQ(legacy.value().pass_fingerprints,
              streamed.value().pass_fingerprints);
  }
}

}  // namespace
}  // namespace glove::api
