// GlovebinSource/GlovebinSink at the Engine's streaming run boundary:
// source/sink contracts (iteration, rewind, magic-based auto-detection,
// fail-at-begin sinks), CSV <-> glovebin converter parity, and the claim
// the format exists for — every strategy produces byte-identical groups
// whether it streams the CSV or the glovebin spelling of a dataset, while
// the glovebin index fast paths keep rewound passes from re-reading the
// whole file.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/golden.hpp"
#include "common/temp_dir.hpp"
#include "glove/api/cli.hpp"
#include "glove/api/engine.hpp"
#include "glove/api/sink.hpp"
#include "glove/api/source.hpp"
#include "glove/cdr/binio.hpp"
#include "glove/cdr/io.hpp"
#include "glove/core/glove.hpp"

namespace glove::api {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<cdr::Fingerprint> drain(DatasetSource& source) {
  std::vector<cdr::Fingerprint> out;
  cdr::Fingerprint fp;
  while (source.next(fp)) out.push_back(std::move(fp));
  return out;
}

TEST(GlovebinSource, StreamsRewindsAndReportsIdentity) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(20);
  const std::string path = dir.file("data.glovebin");
  // A small block size so the sequential scan crosses block boundaries.
  cdr::write_dataset_glovebin_file(path, data, /*block_fingerprints=*/4);

  GlovebinSource source{path};
  EXPECT_EQ(source.kind(), "glovebin-file");
  EXPECT_EQ(source.name(), path);
  EXPECT_EQ(source.dataset_name(), data.name());
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), data.size());

  const auto first = drain(source);
  ASSERT_EQ(first.size(), data.size());
  source.rewind();
  const auto again = drain(source);
  ASSERT_EQ(again.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(again[i].members()[0], data[i].members()[0]) << i;
  }
}

TEST(OpenDatasetSource, SniffsMagicBytesNotExtensions) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::grouped_io_dataset();

  // A glovebin payload deliberately named .csv: the sniffer must pick the
  // binary source (parity tests rely on identically-named inputs).
  const std::string disguised = dir.file("data.csv");
  cdr::write_dataset_glovebin_file(disguised, data);
  EXPECT_EQ(open_dataset_source(disguised)->kind(), "glovebin-file");

  const std::string plain = dir.file("plain.glovebin");
  cdr::write_dataset_file(plain, data);
  EXPECT_EQ(open_dataset_source(plain)->kind(), "csv-file");
}

TEST(MakeDatasetSink, PicksFormatByExtensionOrOverride) {
  const test::TempDir dir;
  EXPECT_EQ(make_dataset_sink(dir.file("out.glovebin"))->kind(),
            "glovebin-file");
  EXPECT_EQ(make_dataset_sink(dir.file("out.csv"))->kind(), "csv-file");
  EXPECT_EQ(make_dataset_sink(dir.file("out.csv"), "glovebin")->kind(),
            "glovebin-file");
  EXPECT_EQ(make_dataset_sink(dir.file("out.glovebin"), "csv")->kind(),
            "csv-file");
  EXPECT_THROW((void)make_dataset_sink(dir.file("out.bin"), "parquet"),
               std::invalid_argument);
}

TEST(GlovebinSink, MatchesBulkWriterByteForByte) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(10);
  const std::string incremental = dir.file("sink.glovebin");
  {
    GlovebinSink sink{incremental};
    EXPECT_EQ(sink.kind(), "glovebin-file");
    sink.begin(data.name());
    for (const cdr::Fingerprint& fp : data.fingerprints()) sink.write(fp);
    sink.finish();
  }
  const std::string bulk = dir.file("bulk.glovebin");
  cdr::write_dataset_glovebin_file(bulk, data);
  EXPECT_EQ(read_file(incremental), read_file(bulk));
}

TEST(FileSinks, UnwritableTargetFailsAtBeginWithPath) {
  // /dev/full opens fine but every write fails — exactly the case the
  // begin() stream checks exist for: surface the bad target at run start,
  // not after hours of streaming.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  {
    CsvFileSink sink{"/dev/full"};
    try {
      sink.begin("doomed");
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find("/dev/full"), std::string::npos)
          << e.what();
    }
  }
  {
    GlovebinSink sink{"/dev/full"};
    EXPECT_THROW(sink.begin("doomed"), std::runtime_error);
  }
}

TEST(ConvertDatasetFile, CsvGlovebinCsvRoundTripIsByteIdentical) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(25);
  const std::string csv_in = dir.file("in.csv");
  const std::string bin = dir.file("mid.glovebin");
  const std::string csv_out = dir.file("out.csv");
  cdr::write_dataset_file(csv_in, data);

  const ConvertStats to_bin = convert_dataset_file(csv_in, bin);
  EXPECT_EQ(to_bin.fingerprints, data.size());
  EXPECT_EQ(to_bin.samples, data.total_samples());
  EXPECT_TRUE(cdr::is_glovebin_file(bin));

  const ConvertStats to_csv = convert_dataset_file(bin, csv_out);
  EXPECT_EQ(to_csv.fingerprints, data.size());
  // The dataset name rides the glovebin footer, so even the CSV header
  // comment survives the round trip.
  EXPECT_EQ(read_file(csv_out), read_file(csv_in));
}

/// Streams `path` through the Engine into a MemorySink and returns the
/// output dataset renamed to `renamed` (output names embed the input
/// path, which legitimately differs between the two spellings).
cdr::FingerprintDataset run_streamed(const Engine& engine,
                                     const RunConfig& config,
                                     const std::string& path,
                                     RunReport* report_out = nullptr) {
  const auto source = open_dataset_source(path);
  MemorySink sink;
  auto result = engine.run(*source, sink, config);
  EXPECT_TRUE(result.ok()) << config.strategy << ": "
                           << result.error().message;
  if (report_out != nullptr) *report_out = std::move(result).value();
  cdr::FingerprintDataset out = std::move(sink).take_dataset();
  out.set_name("parity");
  return out;
}

TEST(GlovebinParity, EveryStrategyMatchesTheCsvSpellingByteForByte) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(60);
  const std::string csv = dir.file("data.csv");
  const std::string bin = dir.file("data.glovebin");
  cdr::write_dataset_file(csv, data);
  cdr::write_dataset_glovebin_file(bin, data, /*block_fingerprints=*/8);

  const Engine engine;
  for (const std::string& strategy : engine.strategies()) {
    RunConfig config;
    config.strategy = strategy;
    config.k = 2;
    config.sharded.tile_size_m = 5'000.0;
    config.sharded.max_shard_users = 16;
    config.sharded.workers = 1;
    const cdr::FingerprintDataset from_csv =
        run_streamed(engine, config, csv);
    const cdr::FingerprintDataset from_bin =
        run_streamed(engine, config, bin);
    EXPECT_EQ(test::dataset_to_csv(from_bin), test::dataset_to_csv(from_csv))
        << strategy;
  }
}

TEST(GlovebinParity, BorderedShardedStreamingAcrossBudgetsAndWorkers) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  const std::string csv = dir.file("data.csv");
  const std::string bin = dir.file("data.glovebin");
  cdr::write_dataset_file(csv, data);
  cdr::write_dataset_glovebin_file(bin, data, /*block_fingerprints=*/8);

  const Engine engine;
  for (const std::size_t budget : {12u, 40u}) {
    for (const std::size_t workers : {1u, 3u}) {
      RunConfig config;
      config.strategy = kStrategySharded;
      config.k = 2;
      config.sharded.tile_size_m = 5'000.0;
      config.sharded.max_shard_users = budget;
      config.sharded.workers = workers;
      config.sharded.border = shard::BorderPolicy::kHalo;
      const std::string label =
          "budget=" + std::to_string(budget) +
          " workers=" + std::to_string(workers);
      const cdr::FingerprintDataset from_csv =
          run_streamed(engine, config, csv);
      const cdr::FingerprintDataset from_bin =
          run_streamed(engine, config, bin);
      EXPECT_EQ(test::dataset_to_csv(from_bin),
                test::dataset_to_csv(from_csv))
          << label;
      EXPECT_TRUE(core::is_k_anonymous(from_bin, 2)) << label;
    }
  }
}

TEST(GlovebinParity, ShardedRunReportsBlockSeekIoStats) {
  const test::TempDir dir;
  const cdr::FingerprintDataset data = test::small_synth_dataset(80);
  const std::string bin = dir.file("data.glovebin");
  cdr::write_dataset_glovebin_file(bin, data, /*block_fingerprints=*/4);

  const Engine engine;
  RunConfig config;
  config.strategy = kStrategySharded;
  config.k = 2;
  config.sharded.tile_size_m = 5'000.0;
  config.sharded.max_shard_users = 16;
  config.sharded.workers = 1;
  RunReport report;
  (void)run_streamed(engine, config, bin, &report);

  EXPECT_EQ(report.source_kind, "glovebin-file");
  EXPECT_GT(report.file_blocks, 0u);
  EXPECT_GT(report.bytes_mapped, 0u);
  // One pass_blocks entry per pass; the planning pass is served from the
  // footer index alone.
  ASSERT_EQ(report.pass_blocks.size(), report.pass_fingerprints.size());
  ASSERT_GE(report.pass_blocks.size(), 2u);
  EXPECT_EQ(report.pass_blocks[0], 0u);
  for (std::size_t i = 1; i < report.pass_blocks.size(); ++i) {
    EXPECT_GT(report.pass_blocks[i], 0u) << "pass " << i;
  }
  EXPECT_EQ(report.blocks_read,
            std::accumulate(report.pass_blocks.begin(),
                            report.pass_blocks.end(), std::uint64_t{0}));
  // Materialization passes fetch subsets, so they report subset sizes —
  // strictly smaller than the planning pass's full count.
  for (std::size_t i = 1; i < report.pass_fingerprints.size(); ++i) {
    EXPECT_LT(report.pass_fingerprints[i], report.pass_fingerprints[0])
        << "pass " << i;
  }
}

TEST(GlovebinSource, CorruptPayloadSurfacesAsInvalidDataset) {
  const test::TempDir dir;
  const std::string bin = dir.file("data.glovebin");
  cdr::write_dataset_glovebin_file(bin, test::small_synth_dataset(10));

  // Flip a byte in the first record's member count region: structural
  // validation at open stays happy (footer intact), decode fails.
  std::string bytes = read_file(bin);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x7f);
  std::ofstream{bin, std::ios::binary | std::ios::trunc}
      << bytes;

  const Engine engine;
  RunConfig config;
  config.strategy = kStrategySharded;
  config.k = 2;
  GlovebinSource source{bin};
  MemorySink sink;
  const auto result = engine.run(source, sink, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidDataset);
  EXPECT_NE(result.error().message.find(bin), std::string::npos)
      << result.error().message;
}

}  // namespace
}  // namespace glove::api
