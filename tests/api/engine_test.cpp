// Engine boundary behavior: typed errors on bad input (no throwing across
// the API), cooperative cancellation with no partial output, and monotone
// progress reporting.

#include "glove/api/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/fixtures.hpp"
#include "glove/core/glove.hpp"

namespace glove::api {
namespace {

TEST(Engine, RejectsKBelowTwo) {
  const Engine engine;
  RunConfig config;
  config.k = 1;
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidConfig);
}

TEST(Engine, RejectsEmptyDataset) {
  const Engine engine;
  const auto result = engine.run(cdr::FingerprintDataset{}, RunConfig{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidDataset);
}

TEST(Engine, RejectsDatasetSmallerThanK) {
  const Engine engine;
  RunConfig config;
  config.k = 100;  // paired_dataset has 7 users
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidDataset);
}

TEST(Engine, RejectsUnknownStrategyListingRegisteredNames) {
  const Engine engine;
  RunConfig config;
  config.strategy = "distributed";  // a future backend, not yet registered
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnknownStrategy);
  EXPECT_NE(result.error().message.find("full"), std::string::npos);
  EXPECT_NE(result.error().message.find("sharded"), std::string::npos);
  EXPECT_NE(result.error().message.find("w4m-baseline"), std::string::npos);
}

TEST(Engine, RejectsChunkSizeBelowK) {
  const Engine engine;
  RunConfig config;
  config.strategy = kStrategyChunked;
  config.k = 3;
  config.chunked.chunk_size = 2;
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidConfig);
}

TEST(Engine, RejectsNonPositiveSuppressionThresholds) {
  const Engine engine;
  RunConfig config;
  config.suppression = core::SuppressionThresholds{0.0, 360.0};
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidConfig);
}

TEST(Engine, RejectsBadW4MTrashFraction) {
  const Engine engine;
  RunConfig config;
  config.strategy = kStrategyW4M;
  config.w4m.trash_fraction = 1.5;
  const auto result = engine.run(test::paired_dataset(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidConfig);
}

TEST(Engine, PreCancelledTokenYieldsCancelledAndNoOutput) {
  const Engine engine;
  RunConfig config;
  config.cancel = util::CancellationToken{};
  config.cancel->request_cancel();
  const auto result = engine.run(test::small_synth_dataset(30), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kCancelled);
}

TEST(Engine, CancellationMidMergeLeavesNoPartialOutput) {
  const Engine engine;
  RunConfig config;
  util::CancellationToken token;
  config.cancel = token;
  std::atomic<std::uint64_t> reports{0};
  // Cancel from the progress callback once the merge loop has started
  // (the first report lands after initialization).
  config.progress = [&](std::uint64_t, std::uint64_t) {
    if (reports.fetch_add(1) >= 1) token.request_cancel();
  };
  const auto result = engine.run(test::small_synth_dataset(40), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kCancelled);
  // A cancelled Result holds no report, hence no partial dataset; value()
  // access fails loudly instead of handing back half-merged output.
  EXPECT_THROW((void)result.value(), std::logic_error);
}

TEST(Engine, ProgressIsMonotoneAndCompletes) {
  const Engine engine;
  // "incremental" matters here: its decision phase reports from
  // parallel_for worker threads, the hardest case for monotonicity —
  // as does "sharded", whose shard jobs complete on scheduler workers.
  for (const char* strategy : {"full", "chunked", "pruned-kgap", "sharded",
                               "incremental", "w4m-baseline"}) {
    RunConfig config;
    config.strategy = strategy;
    config.chunked.chunk_size = 16;
    config.sharded.max_shard_users = 16;
    config.sharded.tile_size_m = 2'000.0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> observed;
    config.progress = [&](std::uint64_t done, std::uint64_t total) {
      observed.emplace_back(done, total);
    };
    const auto result = engine.run(test::small_synth_dataset(30), config);
    ASSERT_TRUE(result.ok()) << strategy << ": " << result.error().message;
    ASSERT_FALSE(observed.empty()) << strategy;
    std::uint64_t previous = 0;
    for (const auto& [done, total] : observed) {
      EXPECT_GE(done, previous) << strategy;
      EXPECT_EQ(total, observed.front().second)
          << strategy << ": total must stay fixed";
      EXPECT_LE(done, total) << strategy;
      previous = done;
    }
    EXPECT_EQ(observed.back().first, observed.back().second)
        << strategy << ": progress must end at done == total";
  }
}

TEST(Engine, RunReportCarriesCountersAndConfigEcho) {
  const Engine engine;
  RunConfig config;
  config.k = 2;
  config.suppression = core::SuppressionThresholds{15'000.0, 360.0};
  const auto result = engine.run(test::small_synth_dataset(30), config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const RunReport& report = result.value();
  EXPECT_EQ(report.strategy, "full");
  EXPECT_EQ(report.counters.input_users, 30u);
  EXPECT_GT(report.counters.output_groups, 0u);
  EXPECT_GT(report.counters.merges, 0u);
  EXPECT_TRUE(core::is_k_anonymous(report.anonymized, 2));
  EXPECT_EQ(report.config.k, 2u);
  EXPECT_TRUE(report.config.suppression_enabled);
  EXPECT_DOUBLE_EQ(report.config.max_spatial_extent_m, 15'000.0);
  EXPECT_GE(report.timings.total_seconds, 0.0);
}

TEST(Engine, IncrementalRejectsDatasetShapedFailuresAsInvalidDataset) {
  const Engine engine;
  const cdr::FingerprintDataset raw = test::small_synth_dataset(20);

  // A "published" release that is not k-anonymous is a dataset problem,
  // not a config problem.
  RunConfig config;
  config.strategy = kStrategyIncremental;
  config.incremental.published = &raw;  // raw singles: not 2-anonymous
  const cdr::FingerprintDataset newcomers = test::random_dataset(4, 9);
  const auto bad_published = engine.run(newcomers, config);
  ASSERT_FALSE(bad_published.ok());
  EXPECT_EQ(bad_published.error().code, ErrorCode::kInvalidDataset);

  // Newcomers must be single-user records; a grouped input is rejected.
  RunConfig fresh;
  fresh.strategy = kStrategyIncremental;
  const auto first = engine.run(raw, fresh);  // no published: greedy pass
  ASSERT_TRUE(first.ok()) << first.error().message;
  const auto grouped_newcomers = engine.run(first.value().anonymized, fresh);
  ASSERT_FALSE(grouped_newcomers.ok());
  EXPECT_EQ(grouped_newcomers.error().code, ErrorCode::kInvalidDataset);
}

TEST(Engine, IncrementalStrategyUpdatesPublishedRelease) {
  const Engine engine;
  const cdr::FingerprintDataset base = test::small_synth_dataset(24);
  RunConfig config;
  const auto first = engine.run(base, config);
  ASSERT_TRUE(first.ok());

  const cdr::FingerprintDataset newcomers = test::random_dataset(
      /*users=*/6, /*seed=*/11, /*max_samples_per_user=*/6,
      /*first_user=*/10'000);  // disjoint from the base release's ids
  RunConfig update = config;
  update.strategy = kStrategyIncremental;
  update.incremental.published = &first.value().anonymized;
  const auto second = engine.run(newcomers, update);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_TRUE(core::is_k_anonymous(second.value().anonymized, 2));
  EXPECT_EQ(second.value().counters.input_users,
            first.value().counters.input_users + 6);
}

}  // namespace
}  // namespace glove::api
