#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "glove/geo/geo.hpp"

namespace glove::geo {
namespace {

TEST(Grid, DefaultCellIs100m) {
  const Grid grid;
  EXPECT_DOUBLE_EQ(grid.cell_size_m(), 100.0);
}

TEST(Grid, RejectsNonPositiveCell) {
  EXPECT_THROW(Grid{0.0}, std::invalid_argument);
  EXPECT_THROW(Grid{-5.0}, std::invalid_argument);
}

TEST(Grid, CellOfOriginIsZero) {
  const Grid grid{100.0};
  const GridCell c = grid.cell_of({0.0, 0.0});
  EXPECT_EQ(c.ix, 0);
  EXPECT_EQ(c.iy, 0);
}

TEST(Grid, PointsInsideSameCellShareIndex) {
  const Grid grid{100.0};
  EXPECT_EQ(grid.cell_of({10.0, 10.0}), grid.cell_of({99.9, 0.1}));
}

TEST(Grid, NegativeCoordinatesFloorCorrectly) {
  const Grid grid{100.0};
  const GridCell c = grid.cell_of({-0.5, -150.0});
  EXPECT_EQ(c.ix, -1);
  EXPECT_EQ(c.iy, -2);
}

TEST(Grid, CellOriginIsSouthWestCorner) {
  const Grid grid{100.0};
  const PlanarPoint origin = grid.cell_origin(GridCell{3, -2});
  EXPECT_DOUBLE_EQ(origin.x_m, 300.0);
  EXPECT_DOUBLE_EQ(origin.y_m, -200.0);
}

TEST(Grid, CellCenterIsMidpoint) {
  const Grid grid{100.0};
  const PlanarPoint center = grid.cell_center(GridCell{0, 0});
  EXPECT_DOUBLE_EQ(center.x_m, 50.0);
  EXPECT_DOUBLE_EQ(center.y_m, 50.0);
}

TEST(Grid, SnapIsIdempotent) {
  const Grid grid{100.0};
  const PlanarPoint p{123.4, 567.8};
  const PlanarPoint snapped = grid.snap(p);
  const PlanarPoint twice = grid.snap(snapped);
  EXPECT_DOUBLE_EQ(snapped.x_m, twice.x_m);
  EXPECT_DOUBLE_EQ(snapped.y_m, twice.y_m);
}

TEST(Grid, SnapNeverMovesMoreThanCellDiagonal) {
  const Grid grid{100.0};
  for (double x = -500.0; x <= 500.0; x += 37.3) {
    for (double y = -500.0; y <= 500.0; y += 41.7) {
      const PlanarPoint snapped = grid.snap({x, y});
      EXPECT_LE(x - snapped.x_m, 100.0);
      EXPECT_GE(x - snapped.x_m, 0.0);
      EXPECT_LE(y - snapped.y_m, 100.0);
      EXPECT_GE(y - snapped.y_m, 0.0);
    }
  }
}

TEST(GridCell, HashSpreadsNeighbors) {
  // Neighbouring cells must hash to distinct values (hash quality smoke
  // test for the unordered containers keyed on cells).
  std::unordered_set<std::size_t> hashes;
  const std::hash<GridCell> hasher;
  for (std::int32_t ix = -10; ix <= 10; ++ix) {
    for (std::int32_t iy = -10; iy <= 10; ++iy) {
      hashes.insert(hasher(GridCell{ix, iy}));
    }
  }
  EXPECT_EQ(hashes.size(), 21u * 21u);
}

TEST(GridCell, EqualityComparesBothAxes) {
  EXPECT_EQ((GridCell{1, 2}), (GridCell{1, 2}));
  EXPECT_NE((GridCell{1, 2}), (GridCell{2, 1}));
}

}  // namespace
}  // namespace glove::geo
