#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "glove/geo/geo.hpp"

namespace glove::geo {
namespace {

// Abidjan and Dakar: the anchor cities of the paper's datasets.
constexpr LatLon kAbidjan{5.345, -4.024};
constexpr LatLon kDakar{14.69, -17.44};

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(haversine_m(kAbidjan, kAbidjan), 0.0);
}

TEST(Haversine, KnownDistanceAbidjanDakar) {
  // Great-circle Abidjan-Dakar is about 1,815 km.
  const double d = haversine_m(kAbidjan, kDakar);
  EXPECT_NEAR(d, 1'815'000.0, 25'000.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const double d = haversine_m(LatLon{10.0, 0.0}, LatLon{11.0, 0.0});
  EXPECT_NEAR(d, 111'195.0, 300.0);
}

TEST(Haversine, IsSymmetric) {
  EXPECT_DOUBLE_EQ(haversine_m(kAbidjan, kDakar),
                   haversine_m(kDakar, kAbidjan));
}

TEST(Lambert, OriginProjectsToZero) {
  const LambertAzimuthalEqualArea proj{kAbidjan};
  const PlanarPoint p = proj.project(kAbidjan);
  EXPECT_NEAR(p.x_m, 0.0, 1e-6);
  EXPECT_NEAR(p.y_m, 0.0, 1e-6);
}

TEST(Lambert, RoundTripsNearOrigin) {
  const LambertAzimuthalEqualArea proj{kAbidjan};
  const LatLon point{5.9, -4.5};
  const LatLon back = proj.inverse(proj.project(point));
  EXPECT_NEAR(back.lat_deg, point.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, point.lon_deg, 1e-9);
}

TEST(Lambert, RoundTripsFarFromOrigin) {
  const LambertAzimuthalEqualArea proj{kDakar};
  const LatLon point{12.0, -12.0};  // ~600 km away
  const LatLon back = proj.inverse(proj.project(point));
  EXPECT_NEAR(back.lat_deg, point.lat_deg, 1e-8);
  EXPECT_NEAR(back.lon_deg, point.lon_deg, 1e-8);
}

TEST(Lambert, PlanarDistanceMatchesHaversineNearby) {
  // For points within ~100 km of the origin the projected Euclidean
  // distance must match the great circle to well under 0.1%.
  const LambertAzimuthalEqualArea proj{kAbidjan};
  const LatLon a{5.40, -4.10};
  const LatLon b{5.90, -3.70};
  const double planar = planar_distance_m(proj.project(a), proj.project(b));
  const double sphere = haversine_m(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 1e-3);
}

TEST(Lambert, NorthIsPositiveY) {
  const LambertAzimuthalEqualArea proj{kAbidjan};
  const PlanarPoint north = proj.project(LatLon{6.0, kAbidjan.lon_deg});
  EXPECT_GT(north.y_m, 0.0);
  EXPECT_NEAR(north.x_m, 0.0, 1.0);
}

TEST(Lambert, EastIsPositiveX) {
  const LambertAzimuthalEqualArea proj{kAbidjan};
  const PlanarPoint east = proj.project(LatLon{kAbidjan.lat_deg, -3.0});
  EXPECT_GT(east.x_m, 0.0);
}

TEST(Lambert, EqualAreaPropertyHolds) {
  // A small quadrilateral keeps its area under the projection (the defining
  // property, and why the paper picked this projection).  Compare the area
  // of a ~10 km x 10 km cell at the origin and ~300 km away.
  const LambertAzimuthalEqualArea proj{kAbidjan};
  const auto cell_area = [&](double lat0, double lon0) {
    const double dlat = 0.09;  // ~10 km
    const double dlon = 0.09;
    const PlanarPoint p00 = proj.project({lat0, lon0});
    const PlanarPoint p10 = proj.project({lat0 + dlat, lon0});
    const PlanarPoint p01 = proj.project({lat0, lon0 + dlon});
    const PlanarPoint p11 = proj.project({lat0 + dlat, lon0 + dlon});
    // Shoelace formula over the quadrilateral p00 p01 p11 p10.
    const auto cross = [](PlanarPoint a, PlanarPoint b) {
      return a.x_m * b.y_m - a.y_m * b.x_m;
    };
    return std::abs(cross(p00, p01) + cross(p01, p11) + cross(p11, p10) +
                    cross(p10, p00)) /
           2.0;
  };
  const double near = cell_area(kAbidjan.lat_deg, kAbidjan.lon_deg);
  const double far = cell_area(kAbidjan.lat_deg + 2.5, kAbidjan.lon_deg + 2.5);
  // A fixed-degree cell's true spherical area scales with cos(latitude of
  // its centre); the projection must reproduce exactly that ratio.
  const double true_ratio =
      std::cos((kAbidjan.lat_deg + 2.5 + 0.045) * std::numbers::pi / 180.0) /
      std::cos((kAbidjan.lat_deg + 0.045) * std::numbers::pi / 180.0);
  EXPECT_NEAR(far / near, true_ratio, 5e-4);
}

TEST(PlanarDistance, EuclideanBasics) {
  EXPECT_DOUBLE_EQ(planar_distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(planar_distance_m({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace glove::geo
